"""Composable scenario transforms over resolved trace bags.

A transform rewrites the tuple of :class:`~repro.trace.trace.MemoryTrace`
objects a source resolved — merging, splitting, repeating, duplicating
or thinning access streams — so one base workload spawns a whole family
of scenarios (``@interleave=2``, ``@phases=4@subsample=0.5``, ...).

Every transform is deterministic: it draws randomness only from the RNG
stream the resolver spawns for its position in the chain (seeded from
the canonical spec and the profile seed), so identical specs resolve to
bit-identical traces in any process — which is what lets the experiment
store content-address transformed workloads exactly like synthetic ones.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.trace.sequence import AccessSequence
from repro.trace.trace import MemoryTrace
from repro.workloads.spec import TransformSpec, as_float, as_int

Traces = tuple[MemoryTrace, ...]


@dataclass(frozen=True)
class _Param:
    """One declared transform parameter (positional or keyword)."""

    name: str
    convert: Callable[[str, str], object]
    default: object


@dataclass(frozen=True)
class _Transform:
    name: str
    func: Callable
    params: tuple[_Param, ...]
    description: str


_TRANSFORMS: dict[str, _Transform] = {}


def register_transform(
    name: str,
    func: Callable,
    params: Sequence[tuple[str, Callable, object]] = (),
    description: str = "",
) -> None:
    """Register ``func(traces, rng, **kwargs) -> traces`` under ``name``.

    ``params`` declares the accepted arguments in positional order as
    ``(name, converter, default)`` triples; spec args are converted and
    validated before the transform runs.
    """
    if name in _TRANSFORMS:
        raise WorkloadError(f"transform {name!r} is already registered")
    _TRANSFORMS[name] = _Transform(
        name=name, func=func,
        params=tuple(_Param(n, c, d) for n, c, d in params),
        description=description,
    )


def available_transforms() -> dict[str, str]:
    """Mapping of registered transform names to their descriptions."""
    return {t.name: t.description for t in _TRANSFORMS.values()}


def apply_transform(
    spec: TransformSpec, traces: Traces, rng: np.random.Generator
) -> Traces:
    """Bind a :class:`TransformSpec`'s args and run the transform."""
    try:
        transform = _TRANSFORMS[spec.name]
    except KeyError:
        raise WorkloadError(
            f"unknown transform {spec.name!r}; "
            f"known: {', '.join(sorted(_TRANSFORMS))}"
        ) from None
    context = f"transform {spec.name!r}"
    if len(spec.args) > len(transform.params):
        raise WorkloadError(
            f"{context} takes at most {len(transform.params)} argument(s), "
            f"got {len(spec.args)}"
        )
    bound = {p.name: p.default for p in transform.params}
    for param, raw in zip(transform.params, spec.args):
        bound[param.name] = param.convert(raw, f"{context} ({param.name})")
    declared = {p.name: p for p in transform.params}
    positional = {p.name for p, _ in zip(transform.params, spec.args)}
    for key, raw in spec.kwargs:
        if key not in declared:
            raise WorkloadError(
                f"{context} has no parameter {key!r}; "
                f"known: {', '.join(sorted(declared))}"
            )
        if key in positional:
            raise WorkloadError(f"{context}: parameter {key!r} given twice")
        bound[key] = declared[key].convert(raw, f"{context} ({key})")
    out = transform.func(traces, rng, **bound)
    if not out:
        raise WorkloadError(f"{context} produced an empty workload")
    return tuple(out)


# -- helpers -----------------------------------------------------------------


def _require_positive(value: int, context: str) -> int:
    if value < 1:
        raise WorkloadError(f"{context} must be >= 1, got {value}")
    return value


def _seq_from_codes(variables, codes: np.ndarray, name: str) -> AccessSequence:
    """Build an :class:`AccessSequence` from pre-validated integer codes.

    Transforms already hold valid code arrays; decoding them to name
    strings only for the constructor to re-encode them would be O(n)
    wasted Python-level work on the layer whose CI benchmark gates
    throughput.
    """
    seq = AccessSequence.__new__(AccessSequence)
    seq._variables = tuple(variables)
    seq._index = {v: i for i, v in enumerate(seq._variables)}
    codes = np.ascontiguousarray(codes, dtype=np.int64)
    codes.setflags(write=False)
    seq._codes = codes
    seq._name = name
    return seq


def _renamed(trace: MemoryTrace, prefix: str, name: str) -> MemoryTrace:
    seq = trace.sequence
    variables = [prefix + v for v in seq.variables]
    return MemoryTrace(
        _seq_from_codes(variables, seq.codes, name), trace.writes
    )


def _sliced(trace: MemoryTrace, index, name: str) -> MemoryTrace:
    """A new trace over ``index``'s accesses, universe restricted to them."""
    seq = trace.sequence
    codes = seq.codes[index]
    used = np.unique(codes)  # ascending = declaration order preserved
    remap = np.full(seq.num_variables, -1, dtype=np.int64)
    remap[used] = np.arange(used.size)
    variables = [seq.variables[i] for i in used]
    return MemoryTrace(
        _seq_from_codes(variables, remap[codes], name),
        trace.writes[index],
    )


# -- the built-in transforms -------------------------------------------------


def _interleave(traces: Traces, rng: np.random.Generator, k: int) -> Traces:
    """Merge groups of ``k`` traces into one randomly interleaved stream.

    Each merged trace preserves every constituent's internal access
    order (a fair random shuffle of the streams, weighted by remaining
    length); variable universes are kept disjoint by prefixing each
    constituent's variables with ``t<j>.`` — the multi-tenant scenario:
    k independent programs sharing one RTM.
    """
    _require_positive(k, "interleave factor")
    out: list[MemoryTrace] = []
    for start in range(0, len(traces), k):
        if start + 1 == len(traces) or k == 1:
            out.append(traces[start])  # lone trace: nothing to merge
            continue
        group = [
            _renamed(t, f"t{j}.", t.name)
            for j, t in enumerate(traces[start:start + k])
        ]
        name = "+".join(t.name or f"t{j}" for j, t in enumerate(group))
        lengths = [len(t) for t in group]
        # A uniform shuffle of the stream-id multiset IS the fair
        # interleaving (drawing the next stream weighted by remaining
        # length), with no per-access RNG call.
        ids = rng.permutation(np.repeat(np.arange(len(group)), lengths))
        variables: list[str] = []
        offsets: list[int] = []
        for t in group:
            offsets.append(len(variables))
            variables.extend(t.variables)
        total = int(sum(lengths))
        codes = np.empty(total, dtype=np.int64)
        writes = np.empty(total, dtype=bool)
        for j, t in enumerate(group):
            slots = np.flatnonzero(ids == j)
            codes[slots] = t.sequence.codes + offsets[j]
            writes[slots] = t.writes
        out.append(MemoryTrace(
            _seq_from_codes(variables, codes, name), writes
        ))
    return tuple(out)


def _phases(traces: Traces, rng: np.random.Generator, k: int) -> Traces:
    """Split each trace into ``k`` contiguous phases, one trace per phase.

    Each phase keeps only the variables it actually touches — the
    working-set turnover becomes explicit program structure, the regime
    where per-phase placement (and the DMA disjointness analysis) wins.
    Traces shorter than ``k`` accesses yield fewer phases.
    """
    _require_positive(k, "phase count")
    out: list[MemoryTrace] = []
    for trace in traces:
        n = len(trace)
        bounds = [round(i * n / k) for i in range(k + 1)]
        for i in range(k):
            lo, hi = bounds[i], bounds[i + 1]
            if hi <= lo:
                continue
            out.append(_sliced(
                trace, slice(lo, hi), f"{trace.name}.ph{i}"
            ))
    return tuple(out)


def _tile(traces: Traces, rng: np.random.Generator, k: int) -> Traces:
    """Repeat each trace's access stream ``k`` times (an outer loop)."""
    _require_positive(k, "tile factor")
    if k == 1:
        return traces
    out = []
    for trace in traces:
        seq = trace.sequence
        out.append(MemoryTrace(
            _seq_from_codes(seq.variables, np.tile(seq.codes, k),
                            f"{seq.name}.x{k}"),
            np.tile(trace.writes, k),
        ))
    return tuple(out)


def _stretch(traces: Traces, rng: np.random.Generator, length: int) -> Traces:
    """Repeat-and-truncate each trace to exactly ``length`` accesses.

    Like ``tile``, the declared variable universe is preserved even when
    truncation leaves some variables unaccessed — they still demand a
    location, so the placement problem's capacity side is unchanged.
    """
    _require_positive(length, "stretch length")
    out = []
    for trace in traces:
        seq = trace.sequence
        reps = -(-length // len(seq))  # ceil
        codes = np.tile(seq.codes, reps)[:length]
        writes = np.tile(trace.writes, reps)[:length]
        out.append(MemoryTrace(
            _seq_from_codes(seq.variables, codes,
                            f"{seq.name}.len{length}"),
            writes,
        ))
    return tuple(out)


def _skew(traces: Traces, rng: np.random.Generator, k: int) -> Traces:
    """``k`` copies of each trace, rotated out of phase, variables renamed.

    Copy ``j`` starts ``j/k`` of the way through the stream and wraps —
    k instances of the same program running skewed in time, each over
    its own variables (``c<j>.`` prefix): the throughput-replication
    scenario. Each copy keeps the full declared universe (like ``tile``/
    ``stretch``), so every copy is the same placement problem.
    """
    _require_positive(k, "skew factor")
    out = []
    for trace in traces:
        seq = trace.sequence
        n = len(seq)
        for j in range(k):
            shift = (j * n) // k
            variables = [f"c{j}." + v for v in seq.variables]
            out.append(MemoryTrace(
                _seq_from_codes(variables, np.roll(seq.codes, -shift),
                                f"{seq.name}.c{j}"),
                np.roll(trace.writes, -shift),
            ))
    return tuple(out)


def _subsample(traces: Traces, rng: np.random.Generator, p: float) -> Traces:
    """Keep each access independently with probability ``p``.

    Models a sampled/filtered trace (as produced by sampling profilers);
    variables that lose all their accesses leave the universe. At least
    one access always survives per trace.
    """
    if not 0.0 < p <= 1.0:
        raise WorkloadError(f"subsample probability must be in (0, 1], got {p}")
    out = []
    for trace in traces:
        mask = rng.random(len(trace)) < p
        if not mask.any():
            mask[0] = True
        out.append(_sliced(
            trace, np.flatnonzero(mask), f"{trace.name}.s{p:g}"
        ))
    return tuple(out)


register_transform(
    "interleave", _interleave, [("k", as_int, 2)],
    "merge groups of k traces into one randomly interleaved stream "
    "(disjoint renamed universes)",
)
register_transform(
    "phases", _phases, [("k", as_int, 2)],
    "split each trace into k contiguous phases, one trace per phase",
)
register_transform(
    "tile", _tile, [("k", as_int, 2)],
    "repeat each trace's access stream k times (outer loop)",
)
register_transform(
    "stretch", _stretch, [("length", as_int, 1024)],
    "repeat-and-truncate each trace to exactly `length` accesses",
)
register_transform(
    "skew", _skew, [("k", as_int, 2)],
    "k time-skewed copies of each trace over renamed variables",
)
register_transform(
    "subsample", _subsample, [("p", as_float, 0.5)],
    "keep each access independently with probability p",
)
