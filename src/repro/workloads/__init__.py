"""repro.workloads — the pluggable workload layer.

Everything the evaluation stack consumes is a *workload*: a named bag of
memory traces (:class:`~repro.trace.generators.offsetstone
.BenchmarkProgram`). This package resolves declarative workload specs —
``source:payload[,param=value...][@transform[=args]...]`` strings, see
:mod:`repro.workloads.spec` for the grammar — through a registry of
sources (:mod:`repro.workloads.sources`: the synthetic generator
families plus external trace files) and an ordered chain of scenario
transforms (:mod:`repro.workloads.transforms`).

Resolution is deterministic: every spec derives its RNG streams from its
canonical string and the context seed, so the same spec resolves to
bit-identical traces in any process. The matrix runner's content keys
hash the resolved traces, which means external-trace and transformed
workloads shard, resume and regenerate through the persistent experiment
store exactly like the built-in suite. A bare benchmark name (``h263``)
is shorthand for ``offsetstone:h263`` and resolves bit-identically to
the pre-registry suite loader.

Quickstart::

    from repro.workloads import WorkloadContext, resolve_workload

    ctx = WorkloadContext(scale=0.25, seed=7)
    program = resolve_workload("file:traces/app.trc@interleave=2", ctx)
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable
from dataclasses import dataclass

from repro.trace.generators.offsetstone import BenchmarkProgram
from repro.util.rng import ensure_rng, spawn_rng
from repro.workloads.spec import (
    DEFAULT_SOURCE,
    TransformSpec,
    WorkloadSpec,
    parse_workload_spec,
)
from repro.workloads.sources import (
    available_sources,
    get_source,
    register_source,
)
from repro.workloads.transforms import (
    apply_transform,
    available_transforms,
    register_transform,
)

__all__ = [
    "BenchmarkProgram",
    "DEFAULT_SOURCE",
    "TransformSpec",
    "WorkloadContext",
    "WorkloadSpec",
    "available_sources",
    "available_transforms",
    "parse_workload_spec",
    "register_source",
    "register_transform",
    "resolve_workload",
    "resolve_workloads",
    "update_program_digest",
    "workload_fingerprint",
]


@dataclass(frozen=True)
class WorkloadContext:
    """Profile-level knobs every source resolves under."""

    scale: float = 1.0
    seed: int = 0
    write_ratio: float = 0.25

    @classmethod
    def from_profile(cls, profile) -> "WorkloadContext":
        """Build a context from an :class:`~repro.eval.profiles.EvalProfile`
        (duck-typed: any object with ``suite_scale``/``seed``/``write_ratio``)."""
        return cls(
            scale=profile.suite_scale,
            seed=profile.seed,
            write_ratio=profile.write_ratio,
        )


def _spec_seed(canonical: str, seed: int) -> int:
    """Deterministic 32-bit master seed for one spec under one context."""
    return (zlib.crc32(canonical.encode())
            ^ (seed * 0x9E3779B1 & 0xFFFFFFFF)) & 0xFFFFFFFF


def resolve_workload(
    spec: str | WorkloadSpec, context: WorkloadContext | None = None
) -> BenchmarkProgram:
    """Resolve one spec into a program: source, then the transform chain.

    The source and each transform position get independent RNG streams
    spawned from the spec's canonical string and the context seed, so
    resolution is bit-identical across processes and insensitive to
    which other workloads resolve around it.
    """
    spec = parse_workload_spec(spec)
    ctx = context or WorkloadContext()
    resolver = get_source(spec.source)
    master = ensure_rng(_spec_seed(spec.canonical, ctx.seed))
    streams = spawn_rng(master, 1 + len(spec.transforms))
    program = resolver(spec, ctx, streams[0])
    if not spec.transforms:
        return program
    traces = program.traces
    for tspec, stream in zip(spec.transforms, streams[1:]):
        traces = apply_transform(tspec, traces, stream)
    # Transformed programs are new workloads: named by the full canonical
    # spec so reports, cell keys and the store never conflate them with
    # their base workload.
    return BenchmarkProgram(
        name=spec.canonical, domain=program.domain, traces=traces
    )


def resolve_workloads(
    specs: Iterable[str | WorkloadSpec],
    context: WorkloadContext | None = None,
) -> list[BenchmarkProgram]:
    """Resolve a suite of specs in order (one program per spec)."""
    return [resolve_workload(s, context) for s in specs]


def update_program_digest(h, program: BenchmarkProgram) -> None:
    """Feed a program's content identity (name + per-trace fingerprints)
    into an in-progress hash object.

    This is the one definition of "the resolved workload's content":
    both :func:`workload_fingerprint` and the matrix runner's cell keys
    (``repro.eval.runner._cell_key``) build on it, so they can never
    drift apart.
    """
    from repro.engine import trace_fingerprint

    h.update(program.name.encode())
    for trace in program.traces:
        h.update(trace_fingerprint(trace).encode())


def workload_fingerprint(program: BenchmarkProgram) -> str:
    """Stable content digest of a resolved program (name + trace digests)."""
    import hashlib

    h = hashlib.sha256()
    update_program_digest(h, program)
    return h.hexdigest()


def describe_registry() -> list[tuple[str, str, str]]:
    """(kind, name, description) rows for every source and transform."""
    rows = [("source", n, d) for n, d in sorted(available_sources().items())]
    rows += [
        ("transform", n, d) for n, d in sorted(available_transforms().items())
    ]
    return rows
