"""Matrix runner: (benchmark program x RTM configuration x policy).

One *cell* places and simulates every access sequence of a program under
one policy on one configuration, summing analytic shifts and simulator
reports — the quantity Figs. 4-6 aggregate.

The full matrix is embarrassingly parallel and the runner exploits that:

* cells are dispatched to a ``concurrent.futures`` process pool
  (``workers > 1``), each worker rebuilding its policies from picklable
  *specs* (policy closures do not pickle) and every cell receiving the
  same deterministic RNG seed it would get serially — ``workers=1`` and
  ``workers=N`` are bit-identical; with ``shared_traces`` on
  (``--shared-traces`` / ``REPRO_SHARED_TRACES``) the compiled traces
  are published once through a zero-copy shared-memory arena
  (:class:`~repro.engine.compile.SharedTraceArena`) instead of pickled
  into every worker;
* results are de-duplicated through a content-keyed cache: a cell is
  keyed by the digest of its traces, its policy spec, its configuration
  and (for stochastic policies only) its seed, so re-running overlapping
  matrices — different figures share most cells — is near-free;
* the same content keys address the *persistent* experiment store
  (:mod:`repro.store`): when a store is attached — ``store=``, the
  profile's ``store`` field or ``REPRO_STORE`` — the runner consults
  disk before computing, writes every freshly computed cell back
  atomically from the parent process (workers stay side-effect-free),
  and records a provenance manifest per run. A killed run therefore
  resumes where it stopped, and ``shard=(i, N)`` partitions the matrix
  deterministically across machines whose merged stores reproduce the
  unsharded run bit-identically.

Every run publishes its hit/miss counters (in-memory cache vs store vs
computed) through :func:`last_matrix_stats` and the module logger.
"""

from __future__ import annotations

import hashlib
import json
import logging
import math
import os
import time
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.core.cost import shift_cost
from repro.core.policies import Policy, get_policy
from repro.engine import FaultModel
from repro.errors import ExperimentError, SimulationError
from repro.eval.profiles import EvalProfile, QUICK_PROFILE
from repro.rtm.geometry import RTMConfig, iso_capacity_sweep
from repro.rtm.report import SimReport
from repro.rtm.sim import simulate
from repro.rtm.timing import params_for
from repro.trace.generators.offsetstone import BenchmarkProgram
from repro.util.rng import ensure_rng, spawn_seeds

#: A picklable policy recipe: ``(name, constructor kwargs)``.
PolicySpec = tuple[str, dict]

logger = logging.getLogger(__name__)


@dataclass
class MatrixStats:
    """Cache observability for one ``run_matrix`` invocation.

    ``cells_total`` counts the cells of the (possibly sharded) matrix
    this run was responsible for; ``sharded_out`` the cells skipped
    because they belong to other shards. Every responsible cell is
    accounted to exactly one of ``hits_memory`` (in-process cache),
    ``hits_store`` (persistent store), ``computed``, or — in enqueue
    mode — ``enqueued`` (submitted to the store's work queue instead of
    simulated here). ``hits_queue`` sub-classifies ``hits_store``: the
    store hits whose queue row is ``done``, i.e. cells computed remotely
    by queue workers rather than by any local run — they are *hits*, not
    misses, so resumed-report stats stay truthful about who did the
    work.
    """

    cells_total: int = 0
    hits_memory: int = 0
    hits_store: int = 0
    hits_queue: int = 0
    computed: int = 0
    enqueued: int = 0
    sharded_out: int = 0
    run_id: str | None = None
    shard: tuple[int, int] | None = None

    @property
    def hits(self) -> int:
        """Cells served without simulation, from either cache layer."""
        return self.hits_memory + self.hits_store

    def describe(self) -> str:
        shard = f", shard {self.shard[0]}/{self.shard[1]}" if self.shard else ""
        queue = (f" ({self.hits_queue} queue-computed)"
                 if self.hits_queue else "")
        enq = f", {self.enqueued} enqueued" if self.enqueued else ""
        return (
            f"{self.cells_total} cell(s): {self.hits_memory} memory hit(s), "
            f"{self.hits_store} store hit(s){queue}, {self.computed} computed"
            f"{enq}{shard}"
        )


#: Stats of the most recent ``run_matrix`` call in this process.
_LAST_STATS: MatrixStats | None = None


def last_matrix_stats() -> MatrixStats | None:
    """Hit/miss counters of the most recent :func:`run_matrix` call."""
    return _LAST_STATS


def parse_shard(text: str) -> tuple[int, int]:
    """Parse an ``i/N`` shard designator into ``(index, count)``."""
    try:
        index_s, _, count_s = text.partition("/")
        index, count = int(index_s), int(count_s)
    except ValueError:
        raise ValueError(f"shard must look like i/N, got {text!r}") from None
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"shard index must satisfy 0 <= i < N, got {index}/{count}"
        )
    return index, count


def _in_shard(key: str, shard: tuple[int, int] | None) -> bool:
    """Deterministic cell-to-shard assignment over the content digest.

    Keying on the digest (not the enumeration index) makes the partition
    a property of the cell itself: disjoint by construction, covering
    the matrix, and stable no matter how callers slice the policy list.
    """
    if shard is None:
        return True
    index, count = shard
    return int(key[:16], 16) % count == index


@dataclass(frozen=True)
class CellResult:
    """Aggregated outcome of one (program, policy, configuration) cell."""

    benchmark: str
    policy: str
    dbcs: int
    shifts: int
    report: SimReport

    @property
    def runtime_ns(self) -> float:
        return self.report.runtime_ns

    @property
    def total_energy_pj(self) -> float:
        return self.report.total_energy_pj


def run_policy_on_program(
    program: BenchmarkProgram,
    policy: Policy,
    config: RTMConfig,
    rng=None,
    backend: object = None,
    fault: FaultModel | None = None,
    scrub_interval: int | None = None,
) -> CellResult:
    """Place and simulate every sequence of ``program`` independently.

    Streaming traces (anything exposing ``chunks()``) take the
    bounded-memory path: placement sees the trace's (possibly windowed)
    :meth:`~repro.trace.streaming.StreamingTrace.placement_sequence`,
    the simulator replays chunk by chunk, and on multi-port geometries
    the analytic single-port ``shifts`` column is computed by an
    observer :class:`~repro.engine.ShiftCursor` riding the same pass —
    warm single-port cost is independent of the port anchor, so the
    observer reproduces :func:`~repro.core.cost.shift_cost` exactly.
    With the default full placement window, a streamed cell is
    bit-identical to its in-memory twin.

    ``fault``/``scrub_interval`` inject the engine's deterministic
    shift-fault model into every simulated trace (fresh per-trace
    controllers, so fault draws are a pure function of the model seed
    and each trace's own access indices). Because faults never perturb
    the *believed* dynamics, the charged ``shifts`` column is identical
    to the clean run's — the single-port reuse below stays exact — and
    only the report's fault observability columns change.
    """
    gen = ensure_rng(rng)
    params = params_for(config)
    capacity = config.locations_per_dbc
    single_port = config.ports_per_track == 1
    total_shifts = 0
    total_report: SimReport | None = None
    for trace in program.traces:
        streaming = hasattr(trace, "chunks")
        seq = trace.placement_sequence() if streaming else trace.sequence
        placement = policy.place(seq, config.dbcs, capacity, rng=gen)
        placement.validate_for(seq, num_dbcs=config.dbcs, capacity=capacity)
        if streaming:
            del seq  # transient: placement done, drop the materialized codes
            from repro.engine.cursor import ShiftCursor
            from repro.rtm.controller import RTMController

            controller = RTMController(
                config, placement, params=params, backend=backend,
                fault=fault, scrub_interval=scrub_interval,
            )
            if single_port:
                report = controller.execute_stream(trace)
                total_shifts += report.shifts
            else:
                observer = ShiftCursor(
                    num_dbcs=placement.num_dbcs, domains=capacity,
                    ports=1, warm_start=True, backend=backend,
                )
                report = controller.execute_stream(
                    trace,
                    chunk_hooks=(
                        lambda _c, dbc, slot: observer.replay_chunk(dbc, slot),
                    ),
                )
                total_shifts += observer.shifts
            total_report = (report if total_report is None
                            else total_report + report)
            continue
        report = simulate(trace, placement, config, params=params,
                          backend=backend, fault=fault,
                          scrub_interval=scrub_interval)
        if single_port:
            # Analytic model and simulator are the same engine kernel on
            # this path; reuse the simulated count instead of recomputing.
            total_shifts += report.shifts
        else:
            # The cell's ``shifts`` column stays the single-port analytic
            # cost (the paper's Fig. 4 quantity) even on multi-port
            # geometries, where the simulated count differs.
            total_shifts += shift_cost(seq, placement, backend=backend)
        total_report = report if total_report is None else total_report + report
    assert total_report is not None
    return CellResult(
        benchmark=program.name,
        policy=policy.name,
        dbcs=config.dbcs,
        shifts=total_shifts,
        report=total_report,
    )


def policy_specs(
    names: Sequence[str], profile: EvalProfile
) -> list[PolicySpec]:
    """Picklable policy recipes with the profile's search budgets applied.

    ``profile.search_scale`` multiplies the GA population (``mu``/``lam``)
    and the RW iteration budget; at the default scale of 1.0 the specs —
    and therefore the matrix runner's content-keyed cell cache keys — are
    untouched.
    """
    scale = profile.search_scale
    if not math.isfinite(scale) or scale <= 0:
        raise ValueError(f"search_scale must be a finite number > 0, got {scale}")
    specs: list[PolicySpec] = []
    for name in names:
        if name == "GA":
            options = dict(profile.ga_options)
            if scale != 1.0:
                from repro.core.ga import GAConfig

                defaults = GAConfig()
                for knob in ("mu", "lam"):
                    base = options.get(knob, getattr(defaults, knob))
                    options[knob] = max(1, round(base * scale))
            specs.append((name, options))
        elif name == "RW":
            iterations = profile.rw_iterations
            if scale != 1.0:
                iterations = max(1, round(iterations * scale))
            specs.append((name, {"iterations": iterations}))
        else:
            specs.append((name, {}))
    return specs


def build_policies(names: Sequence[str], profile: EvalProfile) -> list[Policy]:
    """Instantiate policies with the profile's search budgets applied."""
    return [get_policy(name, **options)
            for name, options in policy_specs(names, profile)]


def load_suite(profile: EvalProfile) -> list[BenchmarkProgram]:
    """The profile's workload programs, resolved through the registry.

    ``profile.workloads`` specs (``offsetstone:h263``,
    ``file:traces/app.trc@interleave=2``, ...) resolve through
    :mod:`repro.workloads`; when unset, the profile's ``benchmarks``
    names resolve as bare ``offsetstone:`` specs — bit-identical to the
    historical direct suite loader, so existing stores stay warm.
    """
    from repro.workloads import WorkloadContext, resolve_workloads

    return resolve_workloads(
        profile.workload_specs, WorkloadContext.from_profile(profile)
    )


# -- content-keyed result cache ---------------------------------------------

_CELL_CACHE: dict[str, CellResult] = {}


def clear_cell_cache() -> None:
    """Drop all memoized cell results (mostly for tests)."""
    _CELL_CACHE.clear()


def _cell_key(
    program: BenchmarkProgram,
    spec: PolicySpec,
    config: RTMConfig,
    seed: int,
    deterministic: bool,
    backend: object,
    fault: FaultModel | None = None,
    scrub_interval: int | None = None,
) -> str:
    """Content digest identifying one cell's inputs.

    Deterministic policies ignore their RNG stream, so their key omits
    the seed — cells recur across differently shaped matrices (each
    figure runs its own policy subset, which reshuffles seed assignment)
    and still hit the cache.

    The program side of the key is the resolved workload itself: the
    program name (for registry workloads, the canonical spec string) and
    the content fingerprints of its traces. External-trace and
    transformed workloads therefore shard, resume and regenerate through
    the store exactly like the built-in suite — and a changed trace file
    changes the key.
    """
    from repro.workloads import update_program_digest

    h = hashlib.sha256()
    update_program_digest(h, program)
    name, options = spec
    h.update(json.dumps([name, options], sort_keys=True).encode())
    h.update(
        json.dumps([config.dbcs, config.tracks_per_dbc,
                    config.domains_per_track, config.ports_per_track,
                    config.banks, config.subarrays]).encode()
    )
    if not deterministic:
        h.update(str(seed).encode())
    if backend is not None:
        h.update(str(backend).encode())
    if fault is not None:
        # Hashed only when a fault model is *active*, so every clean
        # cell keeps its historical key (existing stores stay warm) and
        # faulted/clean cells coexist under distinct keys in one store.
        h.update(
            json.dumps(
                ["fault", fault.key_payload(), scrub_interval]
            ).encode()
        )
    return h.hexdigest()


# -- process-pool plumbing ---------------------------------------------------

#: Per-worker state installed by the pool initializer: the programs
#: (pickled once, or rehydrated zero-copy from a shared-memory arena),
#: the configs and the policies rebuilt from their specs.
_WORKER: dict = {}


def _reset_worker_state() -> None:
    """Tear down any state a previous pool left in this process.

    Forked workers inherit — and ``fork``-started pools within one
    process accumulate — the previous run's ``_WORKER`` dict and the
    engine's compiled-trace caches. Without this reset, every
    consecutive ``run_matrix`` call in one process leaked the prior
    suite's compiled arrays through ``_WORKER`` (regression-tested);
    clearing the compile caches alongside keeps the worker's footprint
    proportional to *its* suite, not the union of every suite its
    ancestor processes ever touched.
    """
    from repro.engine.compile import clear_compile_caches

    arena = _WORKER.pop("arena", None)
    if arena is not None:
        arena.close()
    _WORKER.clear()
    clear_compile_caches()


def _init_worker(
    programs: Sequence[BenchmarkProgram],
    specs: Sequence[PolicySpec],
    configs: Sequence[RTMConfig],
    backend: object,
    arena_spec=None,
    fault: FaultModel | None = None,
    scrub_interval: int | None = None,
) -> None:
    _reset_worker_state()
    if arena_spec is not None:
        from repro.engine.compile import SharedTraceArena

        arena = SharedTraceArena.attach(arena_spec)
        _WORKER["arena"] = arena  # keeps the mapping alive with the views
        programs = arena.programs()
    _WORKER["programs"] = list(programs)
    _WORKER["policies"] = [get_policy(n, **kw) for n, kw in specs]
    _WORKER["configs"] = list(configs)
    _WORKER["backend"] = backend
    _WORKER["fault"] = fault
    _WORKER["scrub_interval"] = scrub_interval


def _run_cell_job(job: tuple[int, int, int, int]) -> CellResult:
    program_i, config_i, policy_i, seed = job
    return run_policy_on_program(
        _WORKER["programs"][program_i],
        _WORKER["policies"][policy_i],
        _WORKER["configs"][config_i],
        rng=seed,
        backend=_WORKER["backend"],
        fault=_WORKER.get("fault"),
        scrub_interval=_WORKER.get("scrub_interval"),
    )


def _resolve_workers(workers: int) -> int:
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers or (os.cpu_count() or 1)


# -- persistent store plumbing ----------------------------------------------


def _resolve_store(store, profile: EvalProfile):
    """Open the requested store; ``(store, owned)`` where ``owned`` means
    this call must close it."""
    if store is None:
        store = profile.store
    if store is None:
        return None, False
    if isinstance(store, (str, os.PathLike)):
        from repro.store import ExperimentStore

        return ExperimentStore(store), True
    return store, False


def _run_manifest(
    profile: EvalProfile,
    policy_names: Sequence[str],
    backend: object,
    workers: int,
    shard: tuple[int, int] | None,
    cells_total: int,
) -> dict:
    """Provenance recorded alongside every store-backed run."""
    import platform

    from repro import __version__
    from repro.store import SCHEMA_VERSION

    return {
        "profile": {
            "name": profile.name,
            "suite_scale": profile.suite_scale,
            "ga_options": dict(profile.ga_options),
            "rw_iterations": profile.rw_iterations,
            "seed": profile.seed,
            "benchmarks": list(profile.benchmarks),
            "workloads": list(profile.workload_specs),
            "write_ratio": profile.write_ratio,
            "search_scale": profile.search_scale,
            "ports": list(profile.ports),
            "fault_rate": profile.fault_rate,
            "scrub_interval": profile.scrub_interval,
        },
        "policies": list(policy_names),
        "backend": str(backend),
        "workers": workers,
        "shard": f"{shard[0]}/{shard[1]}" if shard else None,
        "cells_total": cells_total,
        "package_version": __version__,
        "schema_version": SCHEMA_VERSION,
        "python": platform.python_version(),
    }


def run_matrix(
    policy_names: Sequence[str],
    profile: EvalProfile = QUICK_PROFILE,
    configs: Iterable[RTMConfig] | None = None,
    programs: Sequence[BenchmarkProgram] | None = None,
    workers: int | None = None,
    backend: object = None,
    use_cache: bool = True,
    store=None,
    shard: tuple[int, int] | str | None = None,
    offline: bool | None = None,
    shared_traces: bool | None = None,
    enqueue: bool = False,
) -> dict[tuple[str, str, int], CellResult]:
    """Run the full (program x config x policy) matrix.

    Results are keyed by ``(benchmark, policy, dbcs)``. Every cell gets an
    independent deterministic RNG stream derived from the profile seed, so
    sub-matrices reproduce the full matrix's cells exactly and the worker
    count never changes any number. ``workers``/``backend`` default to the
    profile's settings (``workers=0`` means one per core); ``use_cache``
    consults and fills the process-wide content-keyed cell cache.

    ``store`` (an :class:`repro.store.ExperimentStore`, a path, or the
    profile's ``store`` field) adds the persistent layer: cells missing
    from the in-memory cache are looked up on disk, and freshly computed
    cells are written back one by one — from this parent process only —
    so an interrupted run resumes where it stopped. ``shard=(i, N)`` (or
    ``"i/N"``) restricts computation to a deterministic slice of the
    cells keyed on their content digest: shards are disjoint, cover the
    matrix, and assign cells independently of who runs them, so N
    machines pointed at (copies of) one store partition the work and
    their merged store reproduces the unsharded run bit-identically.
    ``offline`` (default: the profile's flag) forbids simulation: every
    cell must come from a cache layer, otherwise an
    :class:`~repro.errors.ExperimentError` is raised — the
    "regenerate reports without recomputing" mode.

    ``enqueue=True`` *submits* instead of simulating: every cell missing
    from both cache layers becomes an open row in the store's work queue
    (:mod:`repro.store.queue`) carrying the full recompute recipe —
    workload spec, policy spec, configuration, per-cell seed, backend,
    fault model — under the same content key the cell will be stored
    with, priced by the workload's access count so claims hand out
    expensive cells first. Warm cells are returned as usual, so the
    result dict is the already-available slice of the matrix. Requires a
    store and profile-resolved workloads (``programs`` must be left
    ``None``: an explicit program object carries no registry spec a
    remote worker could resolve).

    ``shared_traces`` (default: the profile's flag) publishes the
    compiled traces to pool workers through one zero-copy shared-memory
    arena (:class:`~repro.engine.compile.SharedTraceArena`) instead of
    pickling the suite into every worker — bit-identical results, and
    peak memory stays flat in the worker count. Platforms without shm
    fall back to pickling transparently. The arena lives exactly as
    long as the pool: created right before it, closed and unlinked in a
    ``finally`` (plus an ``atexit`` guard) even when a worker crashes.

    Hit/miss counters for the run are available afterwards via
    :func:`last_matrix_stats`.
    """
    global _LAST_STATS
    programs_explicit = programs is not None
    programs = list(programs) if programs is not None else load_suite(profile)
    configs = list(configs) if configs is not None else iso_capacity_sweep()
    specs = policy_specs(policy_names, profile)
    policies = build_policies(policy_names, profile)
    if workers is None:
        workers = profile.workers
    if backend is None:
        backend = profile.engine_backend
    if isinstance(backend, str):
        # Resolve aliases ("auto") to one concrete backend name *here*,
        # in the parent: the name is hashed into every cell key and
        # shipped verbatim to the pool initializer, so workers can never
        # calibrate to a different backend than the one the parent keyed
        # the cells with. Unknown/uninstalled names fail fast with the
        # pointed install hint instead of deep inside a worker.
        from repro.engine import resolve_backend_name

        backend = resolve_backend_name(backend)
    if offline is None:
        offline = profile.offline
    if shared_traces is None:
        shared_traces = profile.shared_traces
    try:
        fault = (
            FaultModel(rate=profile.fault_rate, seed=profile.seed)
            if profile.fault_rate else None
        )
    except SimulationError as exc:
        raise ExperimentError(f"invalid fault_rate: {exc}") from None
    scrub_interval = profile.scrub_interval
    if scrub_interval is not None:
        if fault is None:
            raise ExperimentError(
                "scrub_interval requires a nonzero fault_rate: scrubbing "
                "a clean simulation would silently charge useless shifts"
            )
        if scrub_interval < 1:
            raise ExperimentError(
                f"scrub_interval must be >= 1, got {scrub_interval}"
            )
    if isinstance(shard, str):
        shard = parse_shard(shard)
    workers = _resolve_workers(workers)
    store_obj, owned_store = _resolve_store(store, profile)
    if enqueue:
        if store_obj is None:
            raise ExperimentError(
                "enqueue mode needs a store: the work queue lives in it "
                "(pass store=, set the profile's store, or REPRO_STORE)"
            )
        if offline:
            raise ExperimentError(
                "enqueue and offline conflict: one submits missing cells, "
                "the other forbids their existence"
            )
        if programs_explicit:
            raise ExperimentError(
                "enqueue mode needs profile-resolved workloads: an "
                "explicit program object carries no registry spec a "
                "remote worker could resolve"
            )
    stats = MatrixStats(shard=shard)
    master = ensure_rng(profile.seed)
    seeds = spawn_seeds(master, len(programs) * len(configs) * len(policies))
    results: dict[tuple[str, str, int], CellResult] = {}
    pending: list[tuple[tuple[str, str, int], tuple[int, int, int, int], str]] = []
    store_hit_keys: list[str] = []
    try:
        i = 0
        for pi, program in enumerate(programs):
            for ci, config in enumerate(configs):
                for li, policy in enumerate(policies):
                    key = _cell_key(program, specs[li], config, seeds[i],
                                    policy.deterministic, backend,
                                    fault=fault,
                                    scrub_interval=scrub_interval)
                    job = (pi, ci, li, seeds[i])
                    i += 1
                    if not _in_shard(key, shard):
                        stats.sharded_out += 1
                        continue
                    stats.cells_total += 1
                    result_key = (program.name, policy.name, config.dbcs)
                    cached = _CELL_CACHE.get(key) if use_cache else None
                    if cached is not None:
                        results[result_key] = cached
                        stats.hits_memory += 1
                        continue
                    if store_obj is not None:
                        stored = store_obj.get_cell(key)
                        if stored is not None:
                            results[result_key] = stored
                            stats.hits_store += 1
                            store_hit_keys.append(key)
                            if use_cache:
                                _CELL_CACHE[key] = stored
                            continue
                    pending.append((result_key, job, key))
        if store_hit_keys:
            # Credit store hits computed by queue workers: the queue and
            # the cell cache share the content-key namespace, so a done
            # queue row under a hit key means the work happened remotely.
            from repro.store.queue import WorkQueue

            stats.hits_queue = len(
                WorkQueue(store_obj).done_among(store_hit_keys)
            )
        if pending and offline:
            missing = sorted({rk for rk, _, _ in pending})
            raise ExperimentError(
                f"offline run: {len(pending)} cell(s) missing from the "
                f"store (first: {missing[0]}); run without --from-store "
                f"to compute them"
            )
        if pending and enqueue:
            _enqueue_pending(
                pending, programs, specs, configs, backend, store_obj,
                stats, policy_names, profile, shard,
                fault=fault, scrub_interval=scrub_interval,
            )
        elif pending:
            _compute_pending(
                pending, programs, policies, specs, configs, backend,
                workers, use_cache, store_obj, stats, results,
                policy_names, profile, shard, shared_traces,
                fault=fault, scrub_interval=scrub_interval,
            )
    finally:
        _LAST_STATS = stats
        logger.info("run_matrix: %s", stats.describe())
        if owned_store and store_obj is not None:
            store_obj.close()
    return results


def _enqueue_pending(
    pending, programs, specs, configs, backend, store_obj, stats,
    policy_names, profile, shard, fault=None, scrub_interval=None,
) -> None:
    """Submit the cache-missing cells to the store's work queue.

    Each queue row carries everything a remote worker needs to rebuild
    the cell from scratch: the *workload spec* (not the resolved
    program — resolution is deterministic under the profile context, so
    the worker re-derives bit-identical traces), the picklable policy
    spec, the configuration's six geometry fields, the per-cell seed the
    serial runner would have used, the resolved backend name and the
    fault model. The queue key is the cell's content digest, so workers
    can re-derive the key from the recipe and assert it matches —
    serialization drift surfaces as a hard error, never as a
    wrong-keyed cell. ``cost_hint`` is the workload's access count:
    claims hand out big cells first, which is what lets a worker pool
    beat static sharding on skewed matrices.
    """
    from repro.store.queue import QueueJob, WorkQueue

    workload_specs = list(profile.workload_specs)
    started = time.perf_counter()
    manifest = _run_manifest(
        profile, policy_names, backend, 0, shard, stats.cells_total
    )
    manifest["mode"] = "enqueue"
    run_id = store_obj.begin_run(manifest)
    stats.run_id = run_id
    jobs = []
    for result_key, (pi, ci, li, seed), key in pending:
        benchmark, policy_name, dbcs = result_key
        config = configs[ci]
        name, options = specs[li]
        payload = {
            "workload": workload_specs[pi],
            "context": {
                "scale": profile.suite_scale,
                "seed": profile.seed,
                "write_ratio": profile.write_ratio,
            },
            "policy": [name, dict(options)],
            "config": {
                "dbcs": config.dbcs,
                "tracks_per_dbc": config.tracks_per_dbc,
                "domains_per_track": config.domains_per_track,
                "ports_per_track": config.ports_per_track,
                "banks": config.banks,
                "subarrays": config.subarrays,
            },
            "seed": seed,
            "backend": str(backend) if backend is not None else None,
            "fault": (
                {
                    "rate": fault.rate,
                    "seed": fault.seed,
                    "dbc_skew": (list(fault.dbc_skew)
                                 if fault.dbc_skew is not None else None),
                }
                if fault is not None else None
            ),
            "scrub_interval": scrub_interval,
        }
        jobs.append(QueueJob(
            key=key, benchmark=benchmark, policy=policy_name, dbcs=dbcs,
            job=payload, cost_hint=programs[pi].total_accesses,
        ))
    counts = WorkQueue(store_obj).submit(jobs)
    stats.enqueued = len(jobs)
    store_obj.finish_run(
        run_id,
        status="enqueued",
        wall_time_s=time.perf_counter() - started,
        cells_total=stats.cells_total,
        hits_memory=stats.hits_memory,
        hits_store=stats.hits_store,
        computed=0,
    )
    logger.info(
        "run_matrix enqueue: %d cell(s) -> queue (%d new, %d already "
        "queued, %d already stored)",
        len(jobs), counts["submitted"], counts["already_queued"],
        counts["already_stored"],
    )


def _compute_pending(
    pending, programs, policies, specs, configs, backend, workers,
    use_cache, store_obj, stats, results, policy_names, profile, shard,
    shared_traces=False, fault=None, scrub_interval=None,
) -> None:
    """Compute the cache-missing cells, persisting each as it lands.

    Cells are committed — to the result dict, the in-memory cache and
    the store — one at a time as the (ordered) pool iterator yields
    them, so a crash or kill mid-run loses at most the cells still in
    flight; the next invocation resumes from the store.
    """
    run_id = None
    started = time.perf_counter()
    if store_obj is not None:
        run_id = store_obj.begin_run(_run_manifest(
            profile, policy_names, backend, workers, shard,
            stats.cells_total,
        ))
        stats.run_id = run_id

    def commit(entry, cell: CellResult) -> None:
        result_key, _job, key = entry
        results[result_key] = cell
        stats.computed += 1
        if use_cache:
            _CELL_CACHE[key] = cell
        if store_obj is not None:
            store_obj.put_cell(key, cell, run_id=run_id)

    status = "failed"
    arena = None
    try:
        jobs = [job for _, job, _ in pending]
        if workers > 1 and len(pending) > 1:
            if shared_traces:
                from repro.engine.compile import try_create_arena

                arena = try_create_arena(programs)
            if arena is not None:
                # Workers rebuild the suite from zero-copy shm views;
                # only skeletons (names, variables) travel by pickle.
                initargs = ((), specs, configs, backend, arena.spec,
                            fault, scrub_interval)
            else:
                initargs = (programs, specs, configs, backend, None,
                            fault, scrub_interval)
            pool_size = min(workers, len(pending))
            with ProcessPoolExecutor(
                max_workers=pool_size,
                initializer=_init_worker,
                initargs=initargs,
            ) as pool:
                for entry, cell in zip(pending, pool.map(_run_cell_job, jobs)):
                    commit(entry, cell)
        else:
            for entry in pending:
                pi, ci, li, seed = entry[1]
                cell = run_policy_on_program(
                    programs[pi], policies[li], configs[ci],
                    rng=seed, backend=backend,
                    fault=fault, scrub_interval=scrub_interval,
                )
                commit(entry, cell)
        status = "complete"
    finally:
        if arena is not None:
            arena.dispose()
        if store_obj is not None:
            store_obj.finish_run(
                run_id,
                status=status,
                wall_time_s=time.perf_counter() - started,
                cells_total=stats.cells_total,
                hits_memory=stats.hits_memory,
                hits_store=stats.hits_store,
                computed=stats.computed,
            )
