"""Matrix runner: (benchmark program x RTM configuration x policy).

One *cell* places and simulates every access sequence of a program under
one policy on one configuration, summing analytic shifts and simulator
reports — the quantity Figs. 4-6 aggregate.

The full matrix is embarrassingly parallel and the runner exploits that:

* cells are dispatched to a ``concurrent.futures`` process pool
  (``workers > 1``), each worker rebuilding its policies from picklable
  *specs* (policy closures do not pickle) and every cell receiving the
  same deterministic RNG seed it would get serially — ``workers=1`` and
  ``workers=N`` are bit-identical;
* results are de-duplicated through a content-keyed cache: a cell is
  keyed by the digest of its traces, its policy spec, its configuration
  and (for stochastic policies only) its seed, so re-running overlapping
  matrices — different figures share most cells — is near-free.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.core.cost import shift_cost
from repro.core.policies import Policy, get_policy
from repro.eval.profiles import EvalProfile, QUICK_PROFILE
from repro.engine import trace_fingerprint
from repro.rtm.geometry import RTMConfig, iso_capacity_sweep
from repro.rtm.report import SimReport
from repro.rtm.sim import simulate
from repro.rtm.timing import params_for
from repro.trace.generators.offsetstone import BenchmarkProgram, load_benchmark
from repro.util.rng import ensure_rng, spawn_seeds

#: A picklable policy recipe: ``(name, constructor kwargs)``.
PolicySpec = tuple[str, dict]


@dataclass(frozen=True)
class CellResult:
    """Aggregated outcome of one (program, policy, configuration) cell."""

    benchmark: str
    policy: str
    dbcs: int
    shifts: int
    report: SimReport

    @property
    def runtime_ns(self) -> float:
        return self.report.runtime_ns

    @property
    def total_energy_pj(self) -> float:
        return self.report.total_energy_pj


def run_policy_on_program(
    program: BenchmarkProgram,
    policy: Policy,
    config: RTMConfig,
    rng=None,
    backend: object = None,
) -> CellResult:
    """Place and simulate every sequence of ``program`` independently."""
    gen = ensure_rng(rng)
    params = params_for(config)
    capacity = config.locations_per_dbc
    single_port = config.ports_per_track == 1
    total_shifts = 0
    total_report: SimReport | None = None
    for trace in program.traces:
        seq = trace.sequence
        placement = policy.place(seq, config.dbcs, capacity, rng=gen)
        placement.validate_for(seq, num_dbcs=config.dbcs, capacity=capacity)
        report = simulate(trace, placement, config, params=params,
                          backend=backend)
        if single_port:
            # Analytic model and simulator are the same engine kernel on
            # this path; reuse the simulated count instead of recomputing.
            total_shifts += report.shifts
        else:
            # The cell's ``shifts`` column stays the single-port analytic
            # cost (the paper's Fig. 4 quantity) even on multi-port
            # geometries, where the simulated count differs.
            total_shifts += shift_cost(seq, placement, backend=backend)
        total_report = report if total_report is None else total_report + report
    assert total_report is not None
    return CellResult(
        benchmark=program.name,
        policy=policy.name,
        dbcs=config.dbcs,
        shifts=total_shifts,
        report=total_report,
    )


def policy_specs(
    names: Sequence[str], profile: EvalProfile
) -> list[PolicySpec]:
    """Picklable policy recipes with the profile's search budgets applied.

    ``profile.search_scale`` multiplies the GA population (``mu``/``lam``)
    and the RW iteration budget; at the default scale of 1.0 the specs —
    and therefore the matrix runner's content-keyed cell cache keys — are
    untouched.
    """
    scale = profile.search_scale
    if not math.isfinite(scale) or scale <= 0:
        raise ValueError(f"search_scale must be a finite number > 0, got {scale}")
    specs: list[PolicySpec] = []
    for name in names:
        if name == "GA":
            options = dict(profile.ga_options)
            if scale != 1.0:
                from repro.core.ga import GAConfig

                defaults = GAConfig()
                for knob in ("mu", "lam"):
                    base = options.get(knob, getattr(defaults, knob))
                    options[knob] = max(1, round(base * scale))
            specs.append((name, options))
        elif name == "RW":
            iterations = profile.rw_iterations
            if scale != 1.0:
                iterations = max(1, round(iterations * scale))
            specs.append((name, {"iterations": iterations}))
        else:
            specs.append((name, {}))
    return specs


def build_policies(names: Sequence[str], profile: EvalProfile) -> list[Policy]:
    """Instantiate policies with the profile's search budgets applied."""
    return [get_policy(name, **options)
            for name, options in policy_specs(names, profile)]


def load_suite(profile: EvalProfile) -> list[BenchmarkProgram]:
    """The profile's benchmark programs."""
    return [
        load_benchmark(
            name,
            scale=profile.suite_scale,
            seed=profile.seed,
            write_ratio=profile.write_ratio,
        )
        for name in profile.benchmarks
    ]


# -- content-keyed result cache ---------------------------------------------

_CELL_CACHE: dict[str, CellResult] = {}


def clear_cell_cache() -> None:
    """Drop all memoized cell results (mostly for tests)."""
    _CELL_CACHE.clear()


def _cell_key(
    program: BenchmarkProgram,
    spec: PolicySpec,
    config: RTMConfig,
    seed: int,
    deterministic: bool,
    backend: object,
) -> str:
    """Content digest identifying one cell's inputs.

    Deterministic policies ignore their RNG stream, so their key omits
    the seed — cells recur across differently shaped matrices (each
    figure runs its own policy subset, which reshuffles seed assignment)
    and still hit the cache.
    """
    h = hashlib.sha256()
    h.update(program.name.encode())
    for trace in program.traces:
        h.update(trace_fingerprint(trace).encode())
    name, options = spec
    h.update(json.dumps([name, options], sort_keys=True).encode())
    h.update(
        json.dumps([config.dbcs, config.tracks_per_dbc,
                    config.domains_per_track, config.ports_per_track,
                    config.banks, config.subarrays]).encode()
    )
    if not deterministic:
        h.update(str(seed).encode())
    if backend is not None:
        h.update(str(backend).encode())
    return h.hexdigest()


# -- process-pool plumbing ---------------------------------------------------

#: Per-worker state installed by the pool initializer: the (pickled-once)
#: programs/configs and the policies rebuilt from their specs.
_WORKER: dict = {}


def _init_worker(
    programs: Sequence[BenchmarkProgram],
    specs: Sequence[PolicySpec],
    configs: Sequence[RTMConfig],
    backend: object,
) -> None:
    _WORKER["programs"] = list(programs)
    _WORKER["policies"] = [get_policy(n, **kw) for n, kw in specs]
    _WORKER["configs"] = list(configs)
    _WORKER["backend"] = backend


def _run_cell_job(job: tuple[int, int, int, int]) -> CellResult:
    program_i, config_i, policy_i, seed = job
    return run_policy_on_program(
        _WORKER["programs"][program_i],
        _WORKER["policies"][policy_i],
        _WORKER["configs"][config_i],
        rng=seed,
        backend=_WORKER["backend"],
    )


def _resolve_workers(workers: int) -> int:
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers or (os.cpu_count() or 1)


def run_matrix(
    policy_names: Sequence[str],
    profile: EvalProfile = QUICK_PROFILE,
    configs: Iterable[RTMConfig] | None = None,
    programs: Sequence[BenchmarkProgram] | None = None,
    workers: int | None = None,
    backend: object = None,
    use_cache: bool = True,
) -> dict[tuple[str, str, int], CellResult]:
    """Run the full (program x config x policy) matrix.

    Results are keyed by ``(benchmark, policy, dbcs)``. Every cell gets an
    independent deterministic RNG stream derived from the profile seed, so
    sub-matrices reproduce the full matrix's cells exactly and the worker
    count never changes any number. ``workers``/``backend`` default to the
    profile's settings (``workers=0`` means one per core); ``use_cache``
    consults and fills the process-wide content-keyed cell cache.
    """
    programs = list(programs) if programs is not None else load_suite(profile)
    configs = list(configs) if configs is not None else iso_capacity_sweep()
    specs = policy_specs(policy_names, profile)
    policies = build_policies(policy_names, profile)
    if workers is None:
        workers = profile.workers
    if backend is None:
        backend = profile.engine_backend
    workers = _resolve_workers(workers)
    master = ensure_rng(profile.seed)
    seeds = spawn_seeds(master, len(programs) * len(configs) * len(policies))
    results: dict[tuple[str, str, int], CellResult] = {}
    pending: list[tuple[tuple[str, str, int], tuple[int, int, int, int], str]] = []
    i = 0
    for pi, program in enumerate(programs):
        for ci, config in enumerate(configs):
            for li, policy in enumerate(policies):
                key = _cell_key(program, specs[li], config, seeds[i],
                                policy.deterministic, backend)
                result_key = (program.name, policy.name, config.dbcs)
                cached = _CELL_CACHE.get(key) if use_cache else None
                if cached is not None:
                    results[result_key] = cached
                else:
                    pending.append((result_key, (pi, ci, li, seeds[i]), key))
                i += 1
    if pending:
        jobs = [job for _, job, _ in pending]
        if workers > 1 and len(pending) > 1:
            pool_size = min(workers, len(pending))
            with ProcessPoolExecutor(
                max_workers=pool_size,
                initializer=_init_worker,
                initargs=(programs, specs, configs, backend),
            ) as pool:
                cells = list(pool.map(_run_cell_job, jobs))
        else:
            cells = [
                run_policy_on_program(
                    programs[pi], policies[li], configs[ci],
                    rng=seed, backend=backend,
                )
                for pi, ci, li, seed in jobs
            ]
        for (result_key, _job, key), cell in zip(pending, cells):
            results[result_key] = cell
            if use_cache:
                _CELL_CACHE[key] = cell
    return results
