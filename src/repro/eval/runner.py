"""Matrix runner: (benchmark program x RTM configuration x policy).

One *cell* places and simulates every access sequence of a program under
one policy on one configuration, summing analytic shifts and simulator
reports — the quantity Figs. 4-6 aggregate.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.cost import shift_cost
from repro.core.policies import Policy, get_policy
from repro.eval.profiles import EvalProfile, QUICK_PROFILE
from repro.rtm.geometry import RTMConfig, iso_capacity_sweep
from repro.rtm.report import SimReport
from repro.rtm.sim import simulate
from repro.rtm.timing import params_for
from repro.trace.generators.offsetstone import BenchmarkProgram, load_benchmark
from repro.util.rng import ensure_rng, spawn_rng


@dataclass(frozen=True)
class CellResult:
    """Aggregated outcome of one (program, policy, configuration) cell."""

    benchmark: str
    policy: str
    dbcs: int
    shifts: int
    report: SimReport

    @property
    def runtime_ns(self) -> float:
        return self.report.runtime_ns

    @property
    def total_energy_pj(self) -> float:
        return self.report.total_energy_pj


def run_policy_on_program(
    program: BenchmarkProgram,
    policy: Policy,
    config: RTMConfig,
    rng=None,
) -> CellResult:
    """Place and simulate every sequence of ``program`` independently."""
    gen = ensure_rng(rng)
    params = params_for(config)
    capacity = config.locations_per_dbc
    total_shifts = 0
    total_report: SimReport | None = None
    for trace in program.traces:
        seq = trace.sequence
        placement = policy.place(seq, config.dbcs, capacity, rng=gen)
        placement.validate_for(seq, num_dbcs=config.dbcs, capacity=capacity)
        total_shifts += shift_cost(seq, placement)
        report = simulate(trace, placement, config, params=params)
        total_report = report if total_report is None else total_report + report
    assert total_report is not None
    return CellResult(
        benchmark=program.name,
        policy=policy.name,
        dbcs=config.dbcs,
        shifts=total_shifts,
        report=total_report,
    )


def build_policies(names: Sequence[str], profile: EvalProfile) -> list[Policy]:
    """Instantiate policies with the profile's search budgets applied."""
    policies = []
    for name in names:
        if name == "GA":
            policies.append(get_policy("GA", **profile.ga_options))
        elif name == "RW":
            policies.append(get_policy("RW", iterations=profile.rw_iterations))
        else:
            policies.append(get_policy(name))
    return policies


def load_suite(profile: EvalProfile) -> list[BenchmarkProgram]:
    """The profile's benchmark programs."""
    return [
        load_benchmark(
            name,
            scale=profile.suite_scale,
            seed=profile.seed,
            write_ratio=profile.write_ratio,
        )
        for name in profile.benchmarks
    ]


def run_matrix(
    policy_names: Sequence[str],
    profile: EvalProfile = QUICK_PROFILE,
    configs: Iterable[RTMConfig] | None = None,
    programs: Sequence[BenchmarkProgram] | None = None,
) -> dict[tuple[str, str, int], CellResult]:
    """Run the full (program x config x policy) matrix.

    Results are keyed by ``(benchmark, policy, dbcs)``. Every cell gets an
    independent deterministic RNG stream derived from the profile seed, so
    sub-matrices reproduce the full matrix's cells exactly.
    """
    programs = list(programs) if programs is not None else load_suite(profile)
    configs = list(configs) if configs is not None else iso_capacity_sweep()
    policies = build_policies(policy_names, profile)
    master = ensure_rng(profile.seed)
    streams = spawn_rng(master, len(programs) * len(configs) * len(policies))
    results: dict[tuple[str, str, int], CellResult] = {}
    i = 0
    for program in programs:
        for config in configs:
            for policy in policies:
                cell = run_policy_on_program(program, policy, config, streams[i])
                results[(program.name, policy.name, config.dbcs)] = cell
                i += 1
    return results
