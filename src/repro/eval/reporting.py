"""Rendering and archival of experiment results.

Every archived experiment is written twice: the human-readable ``.txt``
table (unchanged format) and a machine-readable ``.json`` twin with the
same content — header, rows, summary, paper anchors, notes — so reports
from different runs, stores or shards can be diffed and post-processed
without re-parsing tables.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.eval.experiments import ExperimentResult
from repro.util.tables import format_table

#: Where benchmark harnesses archive rendered experiments.
DEFAULT_RESULTS_DIR = Path(
    os.environ.get("REPRO_RESULTS_DIR", "results")
)


def render_experiment(result: ExperimentResult, max_rows: int | None = None) -> str:
    """Human-readable report: the table plus paper-vs-measured lines."""
    rows = result.rows if max_rows is None else result.rows[:max_rows]
    parts = [format_table(result.header, rows, title=result.title)]
    if max_rows is not None and len(result.rows) > max_rows:
        parts.append(f"... ({len(result.rows) - max_rows} more rows)")
    if result.paper:
        parts.append("")
        parts.append("paper vs measured:")
        for key, expected in result.paper.items():
            measured = result.summary.get(key)
            shown = "n/a" if measured is None else f"{measured:.4g}"
            parts.append(f"  {key:<28} paper={expected:<10.4g} measured={shown}")
    extras = {k: v for k, v in result.summary.items() if k not in result.paper}
    if extras:
        parts.append("")
        parts.append("additional measurements:")
        for key in sorted(extras):
            parts.append(f"  {key:<28} {extras[key]:.4g}")
    if result.notes:
        parts.append("")
        parts.append(f"notes: {result.notes}")
    return "\n".join(parts)


def _json_default(obj):
    """Coerce numpy scalars (and friends) to plain Python numbers."""
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


def experiment_to_dict(result: ExperimentResult) -> dict:
    """The machine-readable form archived next to the rendered table."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "header": list(result.header),
        "rows": [list(row) for row in result.rows],
        "summary": dict(result.summary),
        "paper": dict(result.paper),
        "notes": result.notes,
    }


def render_experiment_json(result: ExperimentResult) -> str:
    """Deterministic JSON rendering (sorted keys, stable row order)."""
    return json.dumps(
        experiment_to_dict(result), indent=2, sort_keys=True,
        default=_json_default,
    ) + "\n"


def save_experiment(
    result: ExperimentResult,
    results_dir: str | Path | None = None,
    max_rows: int | None = None,
) -> Path:
    """Write ``<results_dir>/<experiment_id>.txt`` plus its ``.json`` twin.

    Returns the ``.txt`` path (the JSON twin sits next to it). Both files
    depend only on the result's content, so a warm-store re-run produces
    byte-identical archives.
    """
    directory = Path(results_dir) if results_dir is not None else DEFAULT_RESULTS_DIR
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.experiment_id}.txt"
    path.write_text(render_experiment(result, max_rows=max_rows) + "\n",
                    encoding="utf-8")
    json_path = directory / f"{result.experiment_id}.json"
    json_path.write_text(render_experiment_json(result), encoding="utf-8")
    return path
