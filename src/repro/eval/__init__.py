"""Experiment harness: regenerates every table and figure of Sec. IV."""

from repro.eval.profiles import (
    FULL_PROFILE,
    QUICK_PROFILE,
    SMOKE_PROFILE,
    EvalProfile,
    profile_from_env,
)
from repro.eval.runner import (
    CellResult,
    MatrixStats,
    last_matrix_stats,
    parse_shard,
    run_matrix,
    run_policy_on_program,
)
from repro.eval.experiments import (
    MATRIX_POLICIES,
    ExperimentResult,
    experiment_fig3,
    experiment_fig4,
    experiment_fig5,
    experiment_fig6,
    experiment_sec4b_gap,
    experiment_sec4c,
    experiment_table1,
    populate_matrix,
)
from repro.eval.reporting import (
    experiment_to_dict,
    render_experiment,
    render_experiment_json,
    save_experiment,
)
from repro.eval.ablations import (
    ablation_dbc_sweep,
    ablation_multiset,
    ablation_ports,
    ablation_swapping,
)
from repro.eval.charts import (
    render_bar_chart,
    render_series_chart,
    render_stacked_chart,
)

__all__ = [
    "ablation_ports",
    "ablation_multiset",
    "ablation_swapping",
    "ablation_dbc_sweep",
    "render_bar_chart",
    "render_series_chart",
    "render_stacked_chart",
    "EvalProfile",
    "QUICK_PROFILE",
    "FULL_PROFILE",
    "SMOKE_PROFILE",
    "profile_from_env",
    "CellResult",
    "MatrixStats",
    "last_matrix_stats",
    "parse_shard",
    "run_matrix",
    "run_policy_on_program",
    "MATRIX_POLICIES",
    "populate_matrix",
    "ExperimentResult",
    "experiment_table1",
    "experiment_fig3",
    "experiment_fig4",
    "experiment_fig5",
    "experiment_fig6",
    "experiment_sec4c",
    "experiment_sec4b_gap",
    "render_experiment",
    "render_experiment_json",
    "experiment_to_dict",
    "save_experiment",
]
