"""Metric helpers specific to the evaluation harness.

Thin layer over :mod:`repro.util.mathx` that understands the matrix
layout of :mod:`repro.eval.runner` — used by the benchmark harness and
handy for downstream analyses.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.eval.runner import CellResult
from repro.util.mathx import geometric_mean

Matrix = dict[tuple[str, str, int], CellResult]


def benchmarks_of(matrix: Matrix) -> list[str]:
    return sorted({k[0] for k in matrix})


def policies_of(matrix: Matrix) -> list[str]:
    return sorted({k[1] for k in matrix})


def dbc_counts_of(matrix: Matrix) -> list[int]:
    return sorted({k[2] for k in matrix})


def shift_ratio(
    matrix: Matrix, benchmark: str, numerator: str, denominator: str, dbcs: int
) -> float:
    """Per-benchmark shift-cost ratio between two policies (0/0 = parity)."""
    num = matrix[(benchmark, numerator, dbcs)].shifts
    den = matrix[(benchmark, denominator, dbcs)].shifts
    if den > 0:
        return num / den
    return 1.0 if num == 0 else float(num)


def geomean_shift_ratio(
    matrix: Matrix, numerator: str, denominator: str, dbcs: int,
    benchmarks: Sequence[str] | None = None,
) -> float:
    """Suite-level geometric-mean shift ratio (the Fig. 4 aggregate)."""
    names = list(benchmarks) if benchmarks is not None else benchmarks_of(matrix)
    return geometric_mean(
        shift_ratio(matrix, b, numerator, denominator, dbcs) for b in names
    )


def total_metric(
    matrix: Matrix, policy: str, dbcs: int, metric: str,
    benchmarks: Sequence[str] | None = None,
) -> float:
    """Sum a :class:`CellResult` metric over the suite.

    ``metric`` is one of ``shifts``, ``runtime_ns``, ``total_energy_pj``
    or any :class:`~repro.rtm.report.SimReport` float attribute prefixed
    with ``report.`` (e.g. ``report.leakage_energy_pj``).
    """
    names = list(benchmarks) if benchmarks is not None else benchmarks_of(matrix)
    total = 0.0
    for b in names:
        cell = matrix[(b, policy, dbcs)]
        if metric.startswith("report."):
            total += float(getattr(cell.report, metric[len("report."):]))
        else:
            total += float(getattr(cell, metric))
    return total
