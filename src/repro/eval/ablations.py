"""Library-level ablation experiments (beyond the paper's figures).

The benchmark harness runs richer versions of these inline; the module
versions are the reusable, CLI-accessible cores (``repro-experiment
ablation-*``). Each returns an :class:`~repro.eval.experiments
.ExperimentResult` so the same rendering/archival machinery applies.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.cost import shift_cost
from repro.core.inter.dma import dma_placement
from repro.core.inter.multiset import multiset_dma_placement
from repro.core.intra import shifts_reduce_order
from repro.core.policies import get_policy
from repro.eval.experiments import ExperimentResult
from repro.eval.profiles import EvalProfile, QUICK_PROFILE
from repro.rtm.geometry import iso_capacity_sweep
from repro.rtm.swapping import SwappingController
from repro.trace.generators.synthetic import phased_sequence
from repro.workloads import WorkloadContext, resolve_workload, resolve_workloads


def _default_workloads(
    profile: EvalProfile, fallback: tuple[str, ...]
) -> tuple[str, ...]:
    """The profile's explicit workload specs, or the ablation's defaults.

    Ablations run on a small representative subset by default, but an
    explicit ``--workloads``/``REPRO_WORKLOADS`` selection must win —
    silently ignoring it would report numbers for the wrong traces.
    """
    return profile.workloads if profile.workloads else fallback


def ablation_ports(
    profile: EvalProfile = QUICK_PROFILE,
    benchmarks: tuple[str, ...] | None = None,
    ports: tuple[int, ...] | None = None,
    num_dbcs: int = 4,
) -> ExperimentResult:
    """Shift cost of AFD/DMA placements under varying port counts.

    The sweep defaults to the profile's ``ports`` tuple
    (``repro-experiment ablation-ports --ports 1 2 4 8``); the workload
    list to the profile's ``workloads`` specs, else a representative
    benchmark trio.
    """
    if benchmarks is None:
        benchmarks = _default_workloads(profile, ("cc65", "jpeg", "gsm"))
    if ports is None:
        ports = tuple(profile.ports)
    policies = ("AFD-OFU", "DMA-OFU", "DMA-SR")
    domains = 1024 // num_dbcs
    totals = {(p, pt): 0 for p in policies for pt in ports}
    ctx = WorkloadContext.from_profile(profile)
    for bench in resolve_workloads(benchmarks, ctx):
        for trace in bench.traces:
            seq = trace.sequence
            placements = {
                p: get_policy(p).place(seq, num_dbcs, domains)
                for p in policies
            }
            for p, placement in placements.items():
                for pt in ports:
                    totals[(p, pt)] += shift_cost(
                        seq, placement, ports=pt, domains=domains,
                        backend=profile.engine_backend,
                    )
    rows = [
        [f"{pt} port(s)", *[totals[(p, pt)] for p in policies]]
        for pt in ports
    ]
    summary = {
        f"dma_sr_vs_afd_x@{pt}p":
            (totals[("AFD-OFU", pt)] + 1) / (totals[("DMA-SR", pt)] + 1)
        for pt in ports
    }
    return ExperimentResult(
        experiment_id="ablation_ports",
        title=f"Port-count ablation ({num_dbcs} DBCs, total shifts)",
        header=["config", *policies],
        rows=rows,
        summary=summary,
        notes="DMA's advantage persists for any port count (the paper's "
              "'generalized' claim vs Chen's fixed multi-port assumption).",
    )


def ablation_multiset(
    profile: EvalProfile = QUICK_PROFILE,
    num_dbcs: int = 4,
    seeds: tuple[int, ...] = (0, 1, 2, 3),
) -> ExperimentResult:
    """Single-set Algorithm 1 vs the Sec. VI multi-set extension."""
    domains = 1024 // num_dbcs
    rows = []
    single_total = multi_total = 0
    for s in seeds:
        seq = phased_sequence(8, 5, 60, shared_vars=3, shared_ratio=0.15,
                              rng=s, name=f"phased{s}")
        single = shift_cost(
            seq, dma_placement(seq, num_dbcs, domains,
                               intra=shifts_reduce_order),
            backend=profile.engine_backend,
        )
        multi = shift_cost(
            seq, multiset_dma_placement(seq, num_dbcs, domains,
                                        intra=shifts_reduce_order),
            backend=profile.engine_backend,
        )
        rows.append([seq.name, single, multi])
        single_total += single
        multi_total += multi
    return ExperimentResult(
        experiment_id="ablation_multiset",
        title=f"Multi-set DMA vs single-set ({num_dbcs} DBCs, phased traces)",
        header=["trace", "DMA-SR", "MDMA-SR"],
        rows=rows,
        summary={
            "single_total": float(single_total),
            "multi_total": float(multi_total),
            "multi_vs_single_x": (single_total + 1) / (multi_total + 1),
        },
        notes="The future-work extension pays off where several strong "
              "disjoint chains exist (phase-structured traffic).",
    )


def ablation_dbc_sweep(
    profile: EvalProfile = QUICK_PROFILE,
    benchmarks: tuple[str, ...] | None = None,
    dbc_counts: tuple[int, ...] = (2, 4, 8, 16, 32),
) -> ExperimentResult:
    """Extended DBC-count sweep, beyond the Table I configurations.

    The paper evaluates 2/4/8/16 DBCs (Table I anchors). A 4 KiB array
    with 32-bit words only splits evenly at powers of two, so the sweep
    extends *upward*: the 32-DBC point (32 domains per track) uses the
    calibration model's extrapolation and tests whether the leakage/area
    penalty keeps growing past the paper's largest configuration — the
    question Fig. 6's trend lines raise.

    The sweep is an ordinary (program x config x policy) matrix, so it
    runs through :func:`~repro.eval.runner.run_matrix` and inherits the
    cell caches, the persistent store and the worker pool.
    """
    from repro.eval.runner import run_matrix
    from repro.rtm.geometry import RTMConfig
    from repro.rtm.timing import destiny_params

    if benchmarks is None:
        benchmarks = _default_workloads(profile, ("cc65", "jpeg"))
    programs = resolve_workloads(benchmarks, WorkloadContext.from_profile(profile))
    total_bits = 4096 * 8
    configs = []
    for q in dbc_counts:
        domains = total_bits // (q * 32)
        if domains * q * 32 != total_bits or domains < 1:
            continue  # only even iso-capacity splits
        configs.append(RTMConfig(dbcs=q, domains_per_track=domains))
    matrix = run_matrix(("DMA-SR",), profile, configs=configs,
                        programs=programs)
    rows = []
    summary: dict[str, float] = {}
    for config in configs:
        q = config.dbcs
        cells = [matrix[(p.name, "DMA-SR", q)] for p in programs]
        shifts = sum(c.report.shifts for c in cells)
        runtime = sum(c.report.runtime_ns for c in cells)
        energy = sum(c.report.total_energy_pj for c in cells)
        rows.append([
            q, config.domains_per_track, shifts, round(runtime, 1),
            round(energy, 1), round(destiny_params(q).area_mm2, 4),
        ])
        summary[f"energy_pj@{q}"] = energy
    best_q = min(
        (row[0] for row in rows),
        key=lambda q: summary[f"energy_pj@{q}"],
    )
    summary["best_energy_dbcs"] = float(best_q)
    return ExperimentResult(
        experiment_id="ablation_dbc_sweep",
        title="Extended iso-capacity DBC sweep (DMA-SR, interpolated params)",
        header=["DBCs", "domains", "shifts", "runtime [ns]", "energy [pJ]",
                "area [mm2]"],
        rows=rows,
        summary=summary,
        notes="Non-anchor points use the log-log inter/extrapolated DESTINY "
              "calibration (DESIGN.md §5); anchors are exact Table I.",
    )


def ablation_faults(
    profile: EvalProfile = QUICK_PROFILE,
    benchmarks: tuple[str, ...] | None = None,
    rates: tuple[float, ...] | None = None,
    num_dbcs: int = 4,
    scrub_interval: int | None = None,
) -> ExperimentResult:
    """Placement robustness under deterministic shift-fault injection.

    Sweeps the per-shift fault rate (``0.0`` = the clean baseline) over
    the usual placement-policy trio and ranks the policies by how
    gracefully they degrade: the misaligned-access fraction at the
    highest injected rate. Faults only strike accesses that actually
    charge shifts, so shift-minimizing placements expose fewer draws to
    corruption — the sweep quantifies exactly that coupling.

    Each (rate, policy) cell is an ordinary matrix cell: faulted cells
    are content-addressed apart from clean ones, so repeated sweeps
    resume warm from the same store. The scrub cadence defaults to the
    profile's ``scrub_interval`` and applies only to faulted rows.
    """
    from repro.eval.runner import run_matrix

    if benchmarks is None:
        benchmarks = _default_workloads(profile, ("cc65", "jpeg"))
    if rates is None:
        rates = (0.0, 0.002, 0.01, 0.05)
        if profile.fault_rate and profile.fault_rate not in rates:
            rates = tuple(sorted((*rates, profile.fault_rate)))
    if scrub_interval is None:
        scrub_interval = profile.scrub_interval
    policies = ("AFD-OFU", "DMA-OFU", "DMA-SR")
    config = [c for c in iso_capacity_sweep() if c.dbcs == num_dbcs][0]
    programs = resolve_workloads(benchmarks, WorkloadContext.from_profile(profile))
    rows = []
    misaligned_at_top: dict[str, float] = {}
    top_rate = max(rates)
    for rate in rates:
        p = replace(profile, fault_rate=rate,
                    scrub_interval=scrub_interval if rate else None)
        matrix = run_matrix(policies, p, configs=[config], programs=programs)
        for policy in policies:
            cells = [matrix[(prog.name, policy, num_dbcs)] for prog in programs]
            report = sum(c.report for c in cells)
            rows.append([
                f"{rate:g}", policy, report.shifts, report.scrub_shifts,
                report.fault_injected,
                f"{report.misaligned_fraction:.2%}",
                "yes" if report.fault_corrupted else "no",
            ])
            if rate == top_rate and rate:
                misaligned_at_top[policy] = report.misaligned_fraction
    summary: dict[str, float] = {"top_rate": float(top_rate)}
    ranking = sorted(misaligned_at_top, key=misaligned_at_top.get)
    for place, policy in enumerate(ranking, start=1):
        summary[f"rank_{policy}"] = float(place)
        summary[f"misaligned_frac_{policy}@{top_rate:g}"] = (
            misaligned_at_top[policy]
        )
    notes = ("Faults strike only shift-charging accesses, so placements "
             "that minimize shift traffic also minimize fault exposure.")
    if ranking:
        notes = (f"Most graceful at rate {top_rate:g}: {ranking[0]} "
                 f"(lowest misaligned fraction). " + notes)
    return ExperimentResult(
        experiment_id="ablation_faults",
        title=(f"Fault-rate ablation ({num_dbcs} DBCs"
               + (f", scrub every {scrub_interval}" if scrub_interval else "")
               + ")"),
        header=["fault rate", "policy", "shifts", "scrub shifts",
                "injected", "misaligned", "corrupted"],
        rows=rows,
        summary=summary,
        notes=notes,
    )


def ablation_swapping(
    profile: EvalProfile = QUICK_PROFILE,
    benchmark: str | None = None,
    num_dbcs: int = 4,
    threshold: int = 4,
) -> ExperimentResult:
    """Static placement vs counter-based online swapping.

    Inherently a single-workload probe: with an explicit
    ``profile.workloads`` selection it runs on the *first* spec (the
    title names which), defaulting to ``h263``.
    """
    if benchmark is None:
        (benchmark, *_rest) = _default_workloads(profile, ("h263",))
    config = [c for c in iso_capacity_sweep() if c.dbcs == num_dbcs][0]
    cap = config.locations_per_dbc
    bench = resolve_workload(benchmark, WorkloadContext.from_profile(profile))
    from repro.rtm.sim import simulate

    totals = {"AFD-OFU": 0, "AFD-OFU+swap": 0, "DMA-SR": 0}
    swaps = 0
    for trace in bench.traces:
        seq = trace.sequence
        afd = get_policy("AFD-OFU").place(seq, num_dbcs, cap)
        dma = get_policy("DMA-SR").place(seq, num_dbcs, cap)
        totals["AFD-OFU"] += simulate(trace, afd, config).shifts
        totals["DMA-SR"] += simulate(trace, dma, config).shifts
        dynamic, stats = SwappingController(
            config, afd, threshold=threshold
        ).execute(trace)
        totals["AFD-OFU+swap"] += dynamic.shifts
        swaps += stats.swaps
    return ExperimentResult(
        experiment_id="ablation_swapping",
        title=f"Static placement vs online swapping ({benchmark}, "
              f"{num_dbcs} DBCs)",
        header=["scheme", "total shifts"],
        rows=[[k, v] for k, v in totals.items()],
        summary={
            "swaps": float(swaps),
            "dma_vs_swapped_afd_x":
                (totals["AFD-OFU+swap"] + 1) / (totals["DMA-SR"] + 1),
        },
        notes="Sequence-aware static placement beats the swap-assisted "
              "frequency layout with zero hardware support (Sec. V).",
    )
