"""Experiment definitions: one function per table/figure of the paper.

Each returns an :class:`ExperimentResult` holding the regenerated rows,
the headline measured numbers and the paper's corresponding numbers, so
the benchmark harness can print paper-vs-measured side by side (archived
in EXPERIMENTS.md).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.cost import per_dbc_shift_costs, shift_cost
from repro.core.ga import GAConfig, GeneticPlacer
from repro.core.inter.afd import afd_placement
from repro.core.inter.dma import dma_placement, dma_split
from repro.core.policies import PAPER_POLICIES, get_policy
from repro.core.random_walk import random_walk_search
from repro.errors import ExperimentError
from repro.eval.profiles import EvalProfile, QUICK_PROFILE
from repro.eval.runner import (
    CellResult,
    MatrixStats,
    last_matrix_stats,
    run_matrix,
)
from repro.rtm.geometry import TABLE1_DBC_COUNTS, iso_capacity_sweep
from repro.rtm.timing import destiny_params, table1_rows
from repro.trace.generators.offsetstone import largest_sequence_benchmark
from repro.trace.sequence import AccessSequence
from repro.util.mathx import geometric_mean, percent_improvement
from repro.workloads import WorkloadContext, resolve_workload

Matrix = dict[tuple[str, str, int], CellResult]


@dataclass
class ExperimentResult:
    """Regenerated artifact plus paper-vs-measured headline numbers."""

    experiment_id: str
    title: str
    header: list[str]
    rows: list[list]
    summary: dict[str, float] = field(default_factory=dict)
    paper: dict[str, float] = field(default_factory=dict)
    notes: str = ""


# ---------------------------------------------------------------------------
# The experiment matrix: which policies each matrix-backed figure needs
# ---------------------------------------------------------------------------

FIG5_POLICIES: tuple[str, ...] = ("AFD-OFU", "DMA-OFU", "DMA-SR")
FIG6_POLICIES: tuple[str, ...] = ("AFD-OFU", "DMA-SR")
SEC4C_POLICIES: tuple[str, ...] = ("AFD-OFU", "DMA-OFU", "DMA-Chen", "DMA-SR")

#: Policy list per matrix-backed experiment — the contract sharded
#: populate runs and report regeneration share: a shard run computes
#: cells for exactly this list, so the later full (or offline) run asks
#: for identical cell keys and seed assignments.
MATRIX_POLICIES: dict[str, tuple[str, ...]] = {
    "fig4": tuple(PAPER_POLICIES),
    "fig5": FIG5_POLICIES,
    "fig6": FIG6_POLICIES,
    "sec4c": SEC4C_POLICIES,
}


def populate_matrix(
    experiment_id: str,
    profile: EvalProfile = QUICK_PROFILE,
    shard: tuple[int, int] | str | None = None,
    store=None,
) -> MatrixStats:
    """Fill the (store-backed) matrix for one experiment without reporting.

    The shard workflow's compute half: ``populate_matrix("fig4", ...,
    shard=(i, N))`` on N machines computes disjoint cell slices whose
    union — merged stores, or one shared store — lets the plain
    ``experiment_fig4`` regenerate its report with zero simulation.
    """
    try:
        names = MATRIX_POLICIES[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"{experiment_id!r} is not a matrix experiment; "
            f"choose from {sorted(MATRIX_POLICIES)}"
        ) from None
    run_matrix(names, profile, shard=shard, store=store)
    return last_matrix_stats()


def enqueue_matrix(
    experiment_id: str,
    profile: EvalProfile = QUICK_PROFILE,
    store=None,
) -> MatrixStats:
    """Submit one experiment's matrix to the store's work queue.

    The distributed-queue workflow's submit half: every cell missing
    from the store becomes an open queue row carrying its recompute
    recipe, priced for longest-first claiming; any number of
    ``repro-worker`` processes pulling from the store then compute the
    matrix, and the plain ``experiment_<id>`` regenerates the report
    from the store with zero simulation once the queue drains. Warm
    cells are skipped — queue rows and stored cells share one content
    namespace.
    """
    try:
        names = MATRIX_POLICIES[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"{experiment_id!r} is not a matrix experiment; "
            f"choose from {sorted(MATRIX_POLICIES)}"
        ) from None
    run_matrix(names, profile, store=store, enqueue=True)
    return last_matrix_stats()


# ---------------------------------------------------------------------------
# E-T1: Table I
# ---------------------------------------------------------------------------

def experiment_table1() -> ExperimentResult:
    """Regenerate Table I from the calibrated parameter model."""
    rows = [[label, *values] for label, values in table1_rows()]
    paper = {
        "leakage_mw@16": 8.94,
        "shift_energy_pj@2": 2.18,
        "shift_latency_ns@16": 0.78,
        "area_mm2@2": 0.0159,
    }
    p16, p2 = destiny_params(16), destiny_params(2)
    summary = {
        "leakage_mw@16": p16.leakage_mw,
        "shift_energy_pj@2": p2.shift_energy_pj,
        "shift_latency_ns@16": p16.shift_latency_ns,
        "area_mm2@2": p2.area_mm2,
    }
    return ExperimentResult(
        experiment_id="table1",
        title="Table I: memory system parameters (4KiB RTM, 32nm, 32 tracks/DBC)",
        header=["Parameter", *[str(q) + " DBCs" for q in TABLE1_DBC_COUNTS]],
        rows=rows,
        summary=summary,
        paper=paper,
        notes="Anchored calibration: tabulated values are reproduced exactly; "
              "other DBC counts are log-log interpolated.",
    )


# ---------------------------------------------------------------------------
# E-F3: the worked example of Fig. 3
# ---------------------------------------------------------------------------

def fig3_sequence() -> AccessSequence:
    """The paper's running example (Fig. 3-(a,b))."""
    return AccessSequence(
        list("ababcacaddaiefefgeghgihi"), variables=list("abcdefghi"), name="fig3"
    )


def experiment_fig3() -> ExperimentResult:
    """Reproduce the Fig. 3 walk-through end to end."""
    seq = fig3_sequence()
    afd = afd_placement(seq, 2, 512)
    afd_costs = per_dbc_shift_costs(seq, afd)
    split = dma_split(seq)
    dma = dma_placement(seq, 2, 512)
    dma_costs = per_dbc_shift_costs(seq, dma)
    rows = [
        ["AFD DBC0", " ".join(afd.dbc_lists()[0]), afd_costs[0]],
        ["AFD DBC1", " ".join(afd.dbc_lists()[1]), afd_costs[1]],
        ["AFD total", "", sum(afd_costs)],
        ["DMA Vdj", " ".join(split.vdj), split.disjoint_frequency_sum],
        ["DMA DBC0", " ".join(dma.dbc_lists()[0]), dma_costs[0]],
        ["DMA DBC1", " ".join(dma.dbc_lists()[1]), dma_costs[1]],
        ["DMA total", "", sum(dma_costs)],
    ]
    summary = {
        "afd_total": float(sum(afd_costs)),
        "afd_s0": float(afd_costs[0]),
        "afd_s1": float(afd_costs[1]),
        "dma_total": float(sum(dma_costs)),
        "vdj_freq_sum": float(split.disjoint_frequency_sum),
        "improvement_x": sum(afd_costs) / sum(dma_costs),
    }
    paper = {
        "afd_total": 39.0,
        "afd_s0": 24.0,
        "afd_s1": 15.0,
        "dma_total": 11.0,
        "vdj_freq_sum": 11.0,
        "improvement_x": 3.54,
    }
    return ExperimentResult(
        experiment_id="fig3",
        title="Fig. 3: worked example (AFD vs sequence-aware placement)",
        header=["Step", "Placement", "Shifts"],
        rows=rows,
        summary=summary,
        paper=paper,
        notes="AFD reproduces the figure exactly (39 = 24 + 15). Algorithm 1 "
              "as pseudocoded orders DBC1 by descending frequency, giving 10 "
              "shifts; the figure's hand-drawn DBC1 order (a f g i) costs 11. "
              "Our result is one shift better than the figure and preserves "
              "Vdj = {b,c,d,e,h} with frequency sum 11.",
    )


# ---------------------------------------------------------------------------
# E-F4: Fig. 4, normalized shift costs
# ---------------------------------------------------------------------------

def _norm_ratio(cost: int, reference: int) -> float:
    """Cost normalized to a reference; 0/0 counts as parity."""
    if reference > 0:
        return cost / reference
    return 1.0 if cost == 0 else float(cost)


def _smoothed_ratio(numerator: int, denominator: int) -> float:
    """Add-one-smoothed cost ratio for geometric-mean aggregation.

    Degenerate benchmarks can have zero shifts under one policy (tiny
    sequences spread over many DBCs); plain ratios would then be 0 or
    infinite and wreck the geomean. ``(n+1)/(d+1)`` keeps those cells
    finite while leaving realistic cell ratios essentially unchanged.
    """
    return (numerator + 1) / (denominator + 1)


def experiment_fig4(
    profile: EvalProfile = QUICK_PROFILE,
    matrix: Matrix | None = None,
    policies: Sequence[str] = PAPER_POLICIES,
) -> ExperimentResult:
    """Normalized shift cost per benchmark/configuration (log axis of Fig. 4)."""
    if matrix is None:
        matrix = run_matrix(policies, profile)
    dbc_counts = sorted({k[2] for k in matrix})
    benchmarks = sorted({k[0] for k in matrix})
    header = ["Benchmark", "DBCs", *policies]
    rows: list[list] = []
    ratios: dict[tuple[str, int], dict[str, float]] = {}
    for bench in benchmarks:
        for q in dbc_counts:
            ga_cost = matrix[(bench, "GA", q)].shifts
            row: list = [bench, q]
            per_policy = {}
            for policy in policies:
                r = _norm_ratio(matrix[(bench, policy, q)].shifts, ga_cost)
                per_policy[policy] = r
                row.append(round(r, 3))
            ratios[(bench, q)] = per_policy
            rows.append(row)

    summary: dict[str, float] = {}
    for q in dbc_counts:
        # DMA-OFU improvement over AFD-OFU (the paper's 2.4/2.9/2.8/1.7 line).
        summary[f"dma_vs_afd_x@{q}"] = geometric_mean(
            [
                _smoothed_ratio(
                    matrix[(b, "AFD-OFU", q)].shifts,
                    matrix[(b, "DMA-OFU", q)].shifts,
                )
                for b in benchmarks
            ]
        )
        # Further gains of the intra-optimized variants over DMA-OFU.
        for variant, key in (("DMA-Chen", "chen"), ("DMA-SR", "sr")):
            summary[f"{key}_vs_dma_ofu_x@{q}"] = geometric_mean(
                [
                    _smoothed_ratio(
                        matrix[(b, "DMA-OFU", q)].shifts,
                        matrix[(b, variant, q)].shifts,
                    )
                    for b in benchmarks
                ]
            )
        # Normalized-to-GA geomeans (the plotted series).
        for policy in policies:
            summary[f"norm_{policy}@{q}"] = geometric_mean(
                [ratios[(b, q)][policy] for b in benchmarks]
            )
    paper = {
        "dma_vs_afd_x@2": 2.4, "dma_vs_afd_x@4": 2.9,
        "dma_vs_afd_x@8": 2.8, "dma_vs_afd_x@16": 1.7,
        "chen_vs_dma_ofu_x@2": 1.8, "chen_vs_dma_ofu_x@4": 1.6,
        "chen_vs_dma_ofu_x@8": 1.3, "chen_vs_dma_ofu_x@16": 1.4,
        "sr_vs_dma_ofu_x@2": 2.0, "sr_vs_dma_ofu_x@4": 1.8,
        "sr_vs_dma_ofu_x@8": 1.5, "sr_vs_dma_ofu_x@16": 1.6,
    }
    return ExperimentResult(
        experiment_id="fig4",
        title="Fig. 4: shift cost normalized to GA (geomean factors below)",
        header=header,
        rows=rows,
        summary=summary,
        paper=paper,
        notes=f"{profile.describe()}; suite substituted (DESIGN.md §5): compare "
              "shapes/orderings, not absolute counts.",
    )


# ---------------------------------------------------------------------------
# E-F5: Fig. 5, energy breakdown
# ---------------------------------------------------------------------------

def experiment_fig5(
    profile: EvalProfile = QUICK_PROFILE,
    matrix: Matrix | None = None,
) -> ExperimentResult:
    """Energy, normalized to AFD-OFU, split into leakage/read-write/shift."""
    if matrix is None:
        matrix = run_matrix(FIG5_POLICIES, profile)
    dbc_counts = sorted({k[2] for k in matrix})
    benchmarks = sorted({k[0] for k in matrix})
    rows: list[list] = []
    summary: dict[str, float] = {}
    for q in dbc_counts:
        base = sum(matrix[(b, "AFD-OFU", q)].report.total_energy_pj for b in benchmarks)
        for policy in FIG5_POLICIES:
            reports = [matrix[(b, policy, q)].report for b in benchmarks]
            leak = sum(r.leakage_energy_pj for r in reports)
            rw = sum(r.rw_energy_pj for r in reports)
            shift = sum(r.shift_energy_pj for r in reports)
            total = leak + rw + shift
            rows.append(
                [
                    f"{q}-DBCs", policy,
                    round(leak / base, 4), round(rw / base, 4),
                    round(shift / base, 4), round(total / base, 4),
                ]
            )
            if policy != "AFD-OFU":
                key = "dma_ofu" if policy == "DMA-OFU" else "dma_sr"
                summary[f"{key}_energy_saving_pct@{q}"] = 100.0 * (1 - total / base)
            else:
                summary[f"leakage_share_afd@{q}"] = leak / total
    paper = {
        "dma_ofu_energy_saving_pct@2": 61.0,
        "dma_ofu_energy_saving_pct@4": 62.0,
        "dma_ofu_energy_saving_pct@8": 44.0,
        "dma_ofu_energy_saving_pct@16": 13.0,
        "dma_sr_energy_saving_pct@2": 77.0,
        "dma_sr_energy_saving_pct@4": 70.0,
        "dma_sr_energy_saving_pct@8": 50.0,
        "dma_sr_energy_saving_pct@16": 21.0,
    }
    return ExperimentResult(
        experiment_id="fig5",
        title="Fig. 5: energy consumption normalized to AFD-OFU",
        header=["Config", "Policy", "Leakage", "Read/Write", "Shift", "Total"],
        rows=rows,
        summary=summary,
        paper=paper,
        notes=f"{profile.describe()}; suite-level totals (suite substituted).",
    )


# ---------------------------------------------------------------------------
# E-F6: Fig. 6, DBC-count trade-off for DMA-SR
# ---------------------------------------------------------------------------

def experiment_fig6(
    profile: EvalProfile = QUICK_PROFILE,
    matrix: Matrix | None = None,
) -> ExperimentResult:
    """Shifts/latency/energy improvement over AFD-OFU and area vs DBC count."""
    if matrix is None:
        matrix = run_matrix(FIG6_POLICIES, profile)
    dbc_counts = sorted({k[2] for k in matrix})
    benchmarks = sorted({k[0] for k in matrix})
    area2 = destiny_params(2).area_mm2
    rows: list[list] = []
    summary: dict[str, float] = {}
    dma_energy: dict[int, float] = {}
    for q in dbc_counts:
        afd_shifts = sum(matrix[(b, "AFD-OFU", q)].shifts for b in benchmarks)
        dma_shifts = sum(matrix[(b, "DMA-SR", q)].shifts for b in benchmarks)
        afd_lat = sum(matrix[(b, "AFD-OFU", q)].runtime_ns for b in benchmarks)
        dma_lat = sum(matrix[(b, "DMA-SR", q)].runtime_ns for b in benchmarks)
        afd_en = sum(matrix[(b, "AFD-OFU", q)].total_energy_pj for b in benchmarks)
        dma_en = sum(matrix[(b, "DMA-SR", q)].total_energy_pj for b in benchmarks)
        dma_energy[q] = dma_en
        area = destiny_params(q).area_mm2
        shifts_x = _norm_ratio(afd_shifts, dma_shifts)
        latency_x = afd_lat / dma_lat if dma_lat else 1.0
        energy_x = afd_en / dma_en if dma_en else 1.0
        area_x = area / area2
        rows.append(
            [q, round(shifts_x, 3), round(latency_x, 3),
             round(energy_x, 3), round(area_x, 3)]
        )
        summary[f"shifts_x@{q}"] = shifts_x
        summary[f"latency_x@{q}"] = latency_x
        summary[f"energy_x@{q}"] = energy_x
        summary[f"area_x@{q}"] = area_x
    best_q = min(dma_energy, key=lambda q: dma_energy[q])
    summary["best_energy_dbcs"] = float(best_q)
    worst_q = max(dma_energy, key=lambda q: dma_energy[q])
    summary["worst_energy_dbcs"] = float(worst_q)
    paper = {
        "area_x@2": 1.0,
        "area_x@4": round(0.0186 / 0.0159, 3),
        "area_x@8": round(0.0226 / 0.0159, 3),
        "area_x@16": round(0.0279 / 0.0159, 3),
        # Qualitative anchors from the Fig. 6 discussion:
        # 2-DBC uncompetitive on energy; 16-DBC worse than 4/8 DBC.
        "best_energy_dbcs": 4.0,
    }
    return ExperimentResult(
        experiment_id="fig6",
        title="Fig. 6: DMA-SR improvement over AFD-OFU vs DBC count "
              "(area normalized to 2 DBCs)",
        header=["DBCs", "Shifts x", "Latency x", "Energy x", "Area x"],
        rows=rows,
        summary=summary,
        paper=paper,
        notes="Improvement factors are suite totals of DMA-SR vs AFD-OFU; "
              "falling shift/latency columns and the rising area column are "
              "the paper's trends. best/worst_energy_dbcs track the absolute "
              "DMA-SR energy across configurations (paper: 4 or 8 best, "
              "2 and 16 uncompetitive).",
    )


# ---------------------------------------------------------------------------
# E-S4C: latency improvements quoted in Sec. IV-C
# ---------------------------------------------------------------------------

def experiment_sec4c(
    profile: EvalProfile = QUICK_PROFILE,
    matrix: Matrix | None = None,
) -> ExperimentResult:
    """RTM access latency improvement over AFD-OFU (Sec. IV-C text)."""
    if matrix is None:
        matrix = run_matrix(SEC4C_POLICIES, profile)
    dbc_counts = sorted({k[2] for k in matrix})
    benchmarks = sorted({k[0] for k in matrix})
    rows: list[list] = []
    summary: dict[str, float] = {}
    for policy in SEC4C_POLICIES[1:]:
        row: list = [policy]
        for q in dbc_counts:
            improvements = [
                percent_improvement(
                    matrix[(b, "AFD-OFU", q)].runtime_ns,
                    matrix[(b, policy, q)].runtime_ns,
                )
                for b in benchmarks
            ]
            mean_imp = float(np.mean(improvements))
            row.append(round(mean_imp, 1))
            key = policy.lower().replace("-", "_")
            summary[f"{key}_latency_pct@{q}"] = mean_imp
        rows.append(row)
    paper = {
        "dma_ofu_latency_pct@2": 50.3, "dma_ofu_latency_pct@4": 50.5,
        "dma_ofu_latency_pct@8": 33.1, "dma_ofu_latency_pct@16": 10.4,
        "dma_chen_latency_pct@2": 68.1, "dma_chen_latency_pct@4": 60.1,
        "dma_chen_latency_pct@8": 36.5, "dma_chen_latency_pct@16": 13.4,
        "dma_sr_latency_pct@2": 70.1, "dma_sr_latency_pct@4": 62.0,
        "dma_sr_latency_pct@8": 37.7, "dma_sr_latency_pct@16": 14.6,
    }
    return ExperimentResult(
        experiment_id="sec4c",
        title="Sec. IV-C: mean latency improvement over AFD-OFU [%]",
        header=["Policy", *[f"{q} DBCs" for q in dbc_counts]],
        rows=rows,
        summary=summary,
        paper=paper,
        notes=f"{profile.describe()}; mean of per-benchmark improvements.",
    )


# ---------------------------------------------------------------------------
# E-S4B: optimality-gap probe (GA run long on the largest benchmark)
# ---------------------------------------------------------------------------

def experiment_sec4b_gap(
    profile: EvalProfile = QUICK_PROFILE,
    num_dbcs: int = 4,
    long_generations: int | None = None,
) -> ExperimentResult:
    """How far the heuristics sit from a long GA run (Sec. IV-B's 38%).

    Runs on the suite's longest-sequence benchmark by default; an
    explicit ``profile.workloads`` selection probes its first workload's
    longest sequence instead.
    """
    spec = (profile.workloads[0] if profile.workloads
            else largest_sequence_benchmark())
    bench = resolve_workload(spec, WorkloadContext.from_profile(profile))
    seq = max((t.sequence for t in bench.traces), key=len)
    sweep = {c.dbcs: c for c in iso_capacity_sweep()}
    if num_dbcs not in sweep:
        raise ExperimentError(f"num_dbcs must be one of {sorted(sweep)}")
    capacity = sweep[num_dbcs].locations_per_dbc

    heuristic_costs = {}
    for name in ("DMA-OFU", "DMA-Chen", "DMA-SR"):
        placement = get_policy(name).place(seq, num_dbcs, capacity)
        heuristic_costs[name] = shift_cost(seq, placement,
                                           backend=profile.engine_backend)
    best_heur_name = min(heuristic_costs, key=lambda k: heuristic_costs[k])
    best_heur = heuristic_costs[best_heur_name]

    base = dict(profile.ga_options)
    gens = long_generations
    if gens is None:
        gens = 2000 if profile.name == "full" else 10 * base.get("generations", 20)
    base["generations"] = gens
    base.pop("patience", None)  # the long run must not stop early
    ga = GeneticPlacer(seq, num_dbcs, capacity, GAConfig(**base), rng=profile.seed)
    ga_result = ga.run()

    rw = random_walk_search(
        seq, num_dbcs, capacity,
        iterations=max(ga_result.evaluations, 1), rng=profile.seed + 1,
    )
    gap_pct = percent_improvement(best_heur, ga_result.cost)
    rows = [
        [name, cost] for name, cost in sorted(heuristic_costs.items())
    ] + [
        [f"GA ({gens} generations)", ga_result.cost],
        [f"RW ({rw.iterations} iterations)", rw.cost],
    ]
    summary = {
        "heuristic_gap_pct": gap_pct,
        "ga_cost": float(ga_result.cost),
        "best_heuristic_cost": float(best_heur),
        "rw_cost": float(rw.cost),
        "rw_worse_than_ga": float(rw.cost >= ga_result.cost),
    }
    paper = {
        "heuristic_gap_pct": 38.0 / 1.38,  # 38% worse == GA is ~27.5% below
        "rw_worse_than_ga": 1.0,
    }
    return ExperimentResult(
        experiment_id="sec4b_gap",
        title=f"Sec. IV-B: optimality gap on {bench.name!r} "
              f"(longest sequence, {len(seq)} accesses, {num_dbcs} DBCs)",
        header=["Solver", "Shift cost"],
        rows=rows,
        summary=summary,
        paper=paper,
        notes="Paper: best heuristic ~38% worse than a 2000-generation GA "
              "(equivalently the GA is ~27.5% cheaper); RW never beats GA. "
              f"Best heuristic here: {best_heur_name}.",
    )
