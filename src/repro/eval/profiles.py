"""Evaluation profiles: how much of the full matrix to run.

The paper's full setup (31 programs, GA with 200 generations of 100+100,
RW with 60000 iterations, four RTM configurations) is hours of compute in
pure Python. Profiles scale the suite and the search budgets while
keeping every code path identical:

* ``full``   — the paper's parameters, unabridged.
* ``quick``  — scaled suite and search budgets; minutes, same shapes.
  This is the default for the benchmark harness.
* ``smoke``  — a handful of programs, seconds; used by the test-suite.

Select via ``REPRO_PROFILE=quick|full|smoke`` or pass a profile object
explicitly. The execution knobs of the shift-engine refactor ride along
on the profile: ``engine_backend`` picks the shift engine (vectorized
``numpy`` by default, ``reference`` for the per-access oracle, ``numba``
for the optional JIT-compiled backend when the ``compiled`` extra is
installed, or ``auto`` to micro-calibrate the fastest available — the
matrix runner resolves ``auto`` to a concrete name in the parent, so
pool workers and store cell keys always agree) and ``workers`` the
process-pool width of the matrix runner; both can be forced from the
environment with ``REPRO_BACKEND`` / ``REPRO_WORKERS``
(``REPRO_WORKERS=0`` means "all cores").

``search_scale`` multiplies the search-based policies' budgets — the
GA's population (``mu``/``lam``) and the random walk's iteration count —
on top of whatever the profile sets. Batched candidate evaluation made
bigger populations affordable: scoring is one vectorized engine pass per
generation, so ``search_scale=4`` costs far less than 4x wall time.
Force it from the environment with ``REPRO_SEARCH_SCALE``.

``ports`` is the port-count sweep the multi-port experiments run
(``ablation-ports``, the multi-port benches); override per invocation
with ``repro-experiment --ports 1 2 4 8`` or ``REPRO_PORTS=1,2,4,8``.
Multi-port evaluation rides the engine's vectorized 2-D monoid scan, so
sweeping port counts costs about the same as the single-port run.

``store`` attaches a persistent experiment store (``REPRO_STORE`` from
the environment, ``--store`` on the CLI): matrix cells are cached on
disk across processes, runs resume after interruption and shards share
work — see ``docs/experiments.md``. ``offline`` turns the store into
the only allowed source (report regeneration without simulation).

``shared_traces`` (``REPRO_SHARED_TRACES``, ``--shared-traces``) makes
parallel matrix runs publish the compiled traces once through a
zero-copy shared-memory arena instead of pickling the whole suite into
every pool worker — bit-identical results, flat memory in the worker
count. See "Sharing compiled traces across workers" in
``docs/experiments.md``.

``workloads`` replaces the benchmark list with arbitrary workload specs
resolved through :mod:`repro.workloads` (``offsetstone:h263``,
``file:traces/app.trc@interleave=2``, ...) — see ``docs/workloads.md``.
When unset, the profile's ``benchmarks`` names resolve as bare
``offsetstone:`` specs, bit-identically to the pre-registry suite.
Override per invocation with ``repro-experiment --workloads`` or
``REPRO_WORKLOADS`` (specs separated by whitespace or ``;`` — commas
belong to the spec grammar).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, replace

from repro.errors import ExperimentError
from repro.trace.generators.offsetstone import OFFSETSTONE_NAMES


@dataclass(frozen=True)
class EvalProfile:
    """Scaling knobs for one evaluation run."""

    name: str
    suite_scale: float
    ga_options: dict = field(default_factory=dict)
    rw_iterations: int = 60_000
    seed: int = 7
    benchmarks: tuple[str, ...] = OFFSETSTONE_NAMES
    write_ratio: float = 0.25
    #: Shift-engine backend for simulation and analytic costs
    #: (a registered name, or ``auto`` for the fastest available).
    engine_backend: str = "numpy"
    #: Process-pool width of the matrix runner (1 = serial, 0 = all cores).
    workers: int = 1
    #: Multiplier on the GA population and RW iteration budgets (> 0).
    search_scale: float = 1.0
    #: Path of the persistent experiment store (None = in-memory only).
    store: str | None = None
    #: Forbid simulation: every matrix cell must come from a cache layer.
    offline: bool = False
    #: Port counts swept by the multi-port experiments (``ablation-ports``
    #: and the multi-port benchmarks); ``repro-experiment --ports`` /
    #: ``REPRO_PORTS`` override it per invocation.
    ports: tuple[int, ...] = (1, 2, 4)
    #: Workload specs resolved through :mod:`repro.workloads`; ``None``
    #: means "the ``benchmarks`` names as bare offsetstone specs".
    workloads: tuple[str, ...] | None = None
    #: Share compiled traces with pool workers through one zero-copy
    #: ``multiprocessing.shared_memory`` arena instead of pickling the
    #: suite per worker (``--shared-traces`` / ``REPRO_SHARED_TRACES``).
    #: Bit-identical either way; falls back to pickling where shm is
    #: unavailable. Only matters when ``workers > 1``.
    shared_traces: bool = False
    #: Per-shift off-by-one fault probability injected into every
    #: simulated cell (0.0 = clean; ``--fault-rate`` /
    #: ``REPRO_FAULT_RATE``). Faulted cells are content-addressed apart
    #: from clean ones, so both coexist in one store.
    fault_rate: float = 0.0
    #: Scrubbing cadence in accesses (requires a nonzero ``fault_rate``;
    #: ``--scrub-interval`` / ``REPRO_SCRUB_INTERVAL``).
    scrub_interval: int | None = None

    @property
    def workload_specs(self) -> tuple[str, ...]:
        """The effective workload list this profile evaluates."""
        return self.workloads if self.workloads else self.benchmarks

    def describe(self) -> str:
        ga = ", ".join(f"{k}={v}" for k, v in sorted(self.ga_options.items()))
        scale = (
            f", search x{self.search_scale:g}" if self.search_scale != 1.0 else ""
        )
        kind = "workloads" if self.workloads else "benchmarks"
        faults = ""
        if self.fault_rate:
            faults = f", fault rate {self.fault_rate:g}"
            if self.scrub_interval is not None:
                faults += f" (scrub every {self.scrub_interval})"
        return (
            f"profile {self.name!r}: {len(self.workload_specs)} {kind} at "
            f"scale {self.suite_scale}, GA({ga or 'paper defaults'}), "
            f"RW {self.rw_iterations} iters, seed {self.seed}, "
            f"{self.engine_backend} engine x {self.workers} worker(s){scale}"
            f"{faults}"
        )


FULL_PROFILE = EvalProfile(
    name="full",
    suite_scale=1.0,
    ga_options={},  # mu=lam=100, 200 generations (Sec. IV-A)
    rw_iterations=60_000,
)

QUICK_PROFILE = EvalProfile(
    name="quick",
    suite_scale=0.25,
    ga_options={"mu": 24, "lam": 24, "generations": 30, "patience": 12},
    rw_iterations=1_440,  # matched to the GA's evaluation upper bound
)

SMOKE_PROFILE = EvalProfile(
    name="smoke",
    suite_scale=0.12,
    ga_options={"mu": 12, "lam": 12, "generations": 10, "patience": 5},
    rw_iterations=132,
    benchmarks=("adpcm", "bison", "jpeg", "viterbi"),
)

_PROFILES = {p.name: p for p in (FULL_PROFILE, QUICK_PROFILE, SMOKE_PROFILE)}


def profile_from_env(default: str = "quick") -> EvalProfile:
    """Resolve the profile from ``REPRO_PROFILE`` (default ``quick``).

    ``REPRO_BACKEND`` and ``REPRO_WORKERS`` override the profile's engine
    backend and matrix-runner parallelism without defining a new profile;
    ``REPRO_WORKLOADS`` (whitespace- or ``;``-separated specs) replaces
    the evaluated workload suite.
    """
    name = os.environ.get("REPRO_PROFILE", default).strip().lower()
    try:
        profile = _PROFILES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown REPRO_PROFILE {name!r}; choose from {sorted(_PROFILES)}"
        ) from None
    backend = os.environ.get("REPRO_BACKEND")
    if backend:
        profile = replace(profile, engine_backend=backend.strip().lower())
    workers = os.environ.get("REPRO_WORKERS")
    if workers:
        try:
            profile = replace(profile, workers=int(workers))
        except ValueError:
            raise ExperimentError(
                f"REPRO_WORKERS must be an integer, got {workers!r}"
            ) from None
    search_scale = os.environ.get("REPRO_SEARCH_SCALE")
    if search_scale:
        try:
            scale = float(search_scale)
        except ValueError:
            raise ExperimentError(
                f"REPRO_SEARCH_SCALE must be a number, got {search_scale!r}"
            ) from None
        if not math.isfinite(scale) or scale <= 0:
            raise ExperimentError(
                f"REPRO_SEARCH_SCALE must be a finite number > 0, "
                f"got {search_scale!r}"
            )
        profile = replace(profile, search_scale=scale)
    store = os.environ.get("REPRO_STORE")
    if store:
        profile = replace(profile, store=store)
    shared = os.environ.get("REPRO_SHARED_TRACES")
    if shared:
        norm = shared.strip().lower()
        if norm in ("1", "true", "yes", "on"):
            profile = replace(profile, shared_traces=True)
        elif norm in ("0", "false", "no", "off"):
            profile = replace(profile, shared_traces=False)
        else:
            raise ExperimentError(
                f"REPRO_SHARED_TRACES must be a boolean flag "
                f"(1/0/true/false/yes/no/on/off), got {shared!r}"
            )
    workloads = os.environ.get("REPRO_WORKLOADS")
    if workloads:
        # Separated by whitespace or ';' — never ',', which is part of
        # the spec grammar itself (source parameters).
        specs = tuple(
            s for s in workloads.replace(";", " ").split() if s
        )
        if not specs:
            raise ExperimentError(
                f"REPRO_WORKLOADS must list workload specs, got {workloads!r}"
            )
        profile = replace(profile, workloads=specs)
    fault_rate = os.environ.get("REPRO_FAULT_RATE")
    if fault_rate:
        try:
            rate = float(fault_rate)
        except ValueError:
            raise ExperimentError(
                f"REPRO_FAULT_RATE must be a number, got {fault_rate!r}"
            ) from None
        if not math.isfinite(rate) or not 0.0 <= rate <= 1.0:
            raise ExperimentError(
                f"REPRO_FAULT_RATE must be a probability in [0, 1], "
                f"got {fault_rate!r}"
            )
        profile = replace(profile, fault_rate=rate)
    scrub = os.environ.get("REPRO_SCRUB_INTERVAL")
    if scrub:
        try:
            interval = int(scrub)
        except ValueError:
            raise ExperimentError(
                f"REPRO_SCRUB_INTERVAL must be an integer, got {scrub!r}"
            ) from None
        if interval < 1:
            raise ExperimentError(
                f"REPRO_SCRUB_INTERVAL must be >= 1, got {scrub!r}"
            )
        profile = replace(profile, scrub_interval=interval)
    # scrub-without-fault is rejected later (CLI post-override check and
    # run_matrix), not here: the CLI may still add --fault-rate on top.
    ports = os.environ.get("REPRO_PORTS")
    if ports:
        try:
            swept = tuple(int(p) for p in ports.replace(",", " ").split())
        except ValueError:
            raise ExperimentError(
                f"REPRO_PORTS must be integers, got {ports!r}"
            ) from None
        if not swept or min(swept) < 1:
            raise ExperimentError(
                f"REPRO_PORTS must list port counts >= 1, got {ports!r}"
            )
        profile = replace(profile, ports=swept)
    return profile
