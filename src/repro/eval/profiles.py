"""Evaluation profiles: how much of the full matrix to run.

The paper's full setup (31 programs, GA with 200 generations of 100+100,
RW with 60000 iterations, four RTM configurations) is hours of compute in
pure Python. Profiles scale the suite and the search budgets while
keeping every code path identical:

* ``full``   — the paper's parameters, unabridged.
* ``quick``  — scaled suite and search budgets; minutes, same shapes.
  This is the default for the benchmark harness.
* ``smoke``  — a handful of programs, seconds; used by the test-suite.

Select via ``REPRO_PROFILE=quick|full|smoke`` or pass a profile object
explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.trace.generators.offsetstone import OFFSETSTONE_NAMES


@dataclass(frozen=True)
class EvalProfile:
    """Scaling knobs for one evaluation run."""

    name: str
    suite_scale: float
    ga_options: dict = field(default_factory=dict)
    rw_iterations: int = 60_000
    seed: int = 7
    benchmarks: tuple[str, ...] = OFFSETSTONE_NAMES
    write_ratio: float = 0.25

    def describe(self) -> str:
        ga = ", ".join(f"{k}={v}" for k, v in sorted(self.ga_options.items()))
        return (
            f"profile {self.name!r}: {len(self.benchmarks)} benchmarks at "
            f"scale {self.suite_scale}, GA({ga or 'paper defaults'}), "
            f"RW {self.rw_iterations} iters, seed {self.seed}"
        )


FULL_PROFILE = EvalProfile(
    name="full",
    suite_scale=1.0,
    ga_options={},  # mu=lam=100, 200 generations (Sec. IV-A)
    rw_iterations=60_000,
)

QUICK_PROFILE = EvalProfile(
    name="quick",
    suite_scale=0.25,
    ga_options={"mu": 24, "lam": 24, "generations": 30, "patience": 12},
    rw_iterations=1_440,  # matched to the GA's evaluation upper bound
)

SMOKE_PROFILE = EvalProfile(
    name="smoke",
    suite_scale=0.12,
    ga_options={"mu": 12, "lam": 12, "generations": 10, "patience": 5},
    rw_iterations=132,
    benchmarks=("adpcm", "bison", "jpeg", "viterbi"),
)

_PROFILES = {p.name: p for p in (FULL_PROFILE, QUICK_PROFILE, SMOKE_PROFILE)}


def profile_from_env(default: str = "quick") -> EvalProfile:
    """Resolve the profile from ``REPRO_PROFILE`` (default ``quick``)."""
    name = os.environ.get("REPRO_PROFILE", default).strip().lower()
    try:
        return _PROFILES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown REPRO_PROFILE {name!r}; choose from {sorted(_PROFILES)}"
        ) from None
