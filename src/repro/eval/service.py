"""Distributed queue service: the ``repro-worker`` / ``repro-serve`` pair.

The repo's first multi-process layer. The store's work queue
(:mod:`repro.store.queue`) holds *recipes* — workload spec, policy spec,
geometry, per-cell seed, backend, fault model — keyed by the same
content digest that keys stored cells, and this module supplies the two
long-lived processes that turn recipes into cells:

* :func:`worker_loop` (``repro-worker``) — claim a batch, recompute each
  cell through the ordinary evaluation stack
  (:func:`~repro.eval.runner.run_policy_on_program` with the same policy
  hooks, engine backends and fault plumbing a local ``run_matrix``
  uses), commit the result to the store, mark the claim done. A
  heartbeat thread renews the worker's leases from its own store
  connection, so a stuck *computation* keeps its claim while a dead
  *process* silently forfeits it.
* :func:`serve_loop` (``repro-serve``) — submit matrix experiments to
  the queue, then watch it: requeue expired leases eagerly, log queue
  depth, and regenerate each experiment's report from the store (the
  ``--from-store`` machinery) as soon as its cells are all present —
  reports stream out while later experiments are still computing.

Because workload resolution, placement and simulation are deterministic
functions of the recipe, a matrix computed by any number of workers on
any machines is bit-identical to a single-process cold run. Workers
re-derive the content key from the recipe before committing and refuse
mismatches, so serialization drift can never land a wrong-keyed cell.
"""

from __future__ import annotations

import argparse
import logging
import os
import socket
import sys
import threading
import time
import uuid
from collections.abc import Sequence
from dataclasses import replace

from repro.errors import ExperimentError
from repro.eval.profiles import EvalProfile, profile_from_env
from repro.eval.runner import CellResult, _cell_key, run_policy_on_program
from repro.rtm.geometry import RTMConfig
from repro.store import ExperimentStore
from repro.store.queue import DEFAULT_LEASE_S, WorkQueue

logger = logging.getLogger(__name__)

#: Resolved workloads, cached per (spec, context) — a worker claiming
#: many cells of one matrix resolves each workload once, not per cell.
_WORKLOAD_CACHE: dict[tuple, object] = {}


def _job_workload(job: dict):
    from repro.workloads import WorkloadContext, resolve_workload

    ctx = job["context"]
    cache_key = (job["workload"], ctx["scale"], ctx["seed"],
                 ctx["write_ratio"])
    program = _WORKLOAD_CACHE.get(cache_key)
    if program is None:
        program = resolve_workload(
            job["workload"],
            WorkloadContext(scale=ctx["scale"], seed=ctx["seed"],
                            write_ratio=ctx["write_ratio"]),
        )
        _WORKLOAD_CACHE[cache_key] = program
    return program


def compute_job(job: dict, expected_key: str | None = None) -> CellResult:
    """Recompute one queue recipe into its cell result.

    Rebuilds the exact inputs the enqueuing ``run_matrix`` enumerated —
    resolution is deterministic, so the traces, the policy and the seed
    are bit-identical — and, when ``expected_key`` is given, re-derives
    the content digest and raises :class:`~repro.errors.ExperimentError`
    on mismatch rather than ever committing under a drifted key.
    """
    from repro.core.policies import get_policy
    from repro.engine import FaultModel

    program = _job_workload(job)
    name, options = job["policy"]
    policy = get_policy(name, **options)
    config = RTMConfig(**job["config"])
    fault = None
    if job.get("fault") is not None:
        f = job["fault"]
        fault = FaultModel(
            rate=f["rate"], seed=f["seed"],
            dbc_skew=tuple(f["dbc_skew"]) if f.get("dbc_skew") else None,
        )
    backend = job.get("backend")
    scrub_interval = job.get("scrub_interval")
    seed = job["seed"]
    if expected_key is not None:
        derived = _cell_key(
            program, (name, options), config, seed, policy.deterministic,
            backend, fault=fault, scrub_interval=scrub_interval,
        )
        if derived != expected_key:
            raise ExperimentError(
                f"job recipe re-keys to {derived[:12]}..., but was "
                f"claimed as {expected_key[:12]}...: recipe/key "
                f"serialization drift — refusing to commit"
            )
    return run_policy_on_program(
        program, policy, config, rng=seed, backend=backend,
        fault=fault, scrub_interval=scrub_interval,
    )


def default_owner() -> str:
    """A collision-free worker identity: host, pid, and a random tail
    (two loops in one process — tests do this — must not share leases)."""
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"


class _Heartbeat(threading.Thread):
    """Lease-renewal daemon with its own store connection.

    sqlite connections are not thread-safe across threads by default, so
    the heartbeat opens the store file independently; it renews every
    lease the owner holds at a third of the lease period — a worker
    stuck in a long cell keeps its claim, a SIGKILLed worker stops
    heartbeating and its leases lapse.
    """

    def __init__(self, store_path, owner: str, lease_s: float):
        super().__init__(daemon=True, name=f"heartbeat:{owner}")
        self._store_path = store_path
        self._owner = owner
        self._lease_s = lease_s
        self._halt = threading.Event()

    def run(self) -> None:  # pragma: no cover - timing-dependent thread
        store = ExperimentStore(self._store_path)
        try:
            while not self._halt.wait(self._lease_s / 3.0):
                try:
                    WorkQueue(store).heartbeat(self._owner, self._lease_s)
                except Exception:
                    logger.exception("heartbeat failed (will retry)")
        finally:
            store.close()

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=self._lease_s)


def worker_loop(
    store_path,
    owner: str | None = None,
    batch: int = 4,
    lease_s: float = DEFAULT_LEASE_S,
    poll_s: float = 1.0,
    drain: bool = False,
    max_cells: int | None = None,
    heartbeat: bool = True,
) -> dict:
    """Claim, compute and commit cells until stopped.

    ``drain=True`` exits once the queue holds no open or claimed cells
    (the batch-job mode CI and tests use); otherwise the loop polls
    forever (the long-lived service mode). ``max_cells`` bounds the
    number of cells this call settles — crash tests use it to stop a
    worker mid-matrix. Failed computations are reported to the queue
    (bounded retry, persisted error log) and never kill the loop; an
    interrupt releases all unfinished claims before exiting. Returns
    ``{"owner", "computed", "failed"}``.
    """
    owner = owner or default_owner()
    store = ExperimentStore(store_path)
    queue = WorkQueue(store)
    computed = failed = 0
    started = time.perf_counter()
    import platform

    from repro import __version__
    from repro.store import SCHEMA_VERSION

    run_id = store.begin_run({
        "mode": "worker",
        "owner": owner,
        "store": str(store_path),
        "batch": batch,
        "lease_s": lease_s,
        "package_version": __version__,
        "schema_version": SCHEMA_VERSION,
        "python": platform.python_version(),
    })
    hb = _Heartbeat(store_path, owner, lease_s) if heartbeat else None
    if hb is not None:
        hb.start()
    status = "failed"
    try:
        while max_cells is None or computed + failed < max_cells:
            limit = batch
            if max_cells is not None:
                limit = min(limit, max_cells - computed - failed)
            cells = queue.claim(limit, owner, lease_s=lease_s)
            if not cells:
                if drain and queue.pending() == 0:
                    break
                time.sleep(poll_s)
                continue
            for cell in cells:
                try:
                    result = compute_job(cell.job, expected_key=cell.key)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    outcome = queue.fail(
                        cell.key, owner, f"{type(exc).__name__}: {exc}"
                    )
                    failed += 1
                    logger.warning(
                        "worker %s: cell %s attempt %d failed (%s): %s",
                        owner, cell.key[:12], cell.attempts, outcome, exc,
                    )
                    continue
                store.put_cell(cell.key, result, run_id=run_id)
                queue.complete(cell.key, owner)
                computed += 1
                logger.info(
                    "worker %s: %s/%s/%d done (%d computed)",
                    owner, result.benchmark, result.policy, result.dbcs,
                    computed,
                )
        status = "complete"
    except KeyboardInterrupt:
        released = queue.release(owner)
        status = "interrupted"
        logger.info("worker %s: interrupted, released %d claim(s)",
                    owner, released)
    finally:
        if hb is not None:
            hb.stop()
        store.finish_run(
            run_id,
            status=status,
            wall_time_s=time.perf_counter() - started,
            cells_total=computed + failed,
            hits_memory=0,
            hits_store=0,
            computed=computed,
        )
        store.close()
    return {"owner": owner, "computed": computed, "failed": failed}


#: The matrix experiments' report generators, by experiment id.
def _experiment_fn(experiment_id: str):
    from repro.eval import experiments as exp

    if experiment_id not in exp.MATRIX_POLICIES:
        raise ExperimentError(
            f"{experiment_id!r} is not a matrix experiment; "
            f"choose from {sorted(exp.MATRIX_POLICIES)}"
        )
    return getattr(exp, f"experiment_{experiment_id}")


def serve_loop(
    store_path,
    experiments: Sequence[str],
    profile: EvalProfile | None = None,
    interval: float = 2.0,
    report_dir=None,
    timeout_s: float | None = None,
) -> dict:
    """Submit matrix experiments to the queue and dispatch to completion.

    The scheduler half of the scheduler/worker split: enqueue every
    experiment's missing cells (warm cells skipped — the queue shares
    the store's content namespace), then watch the queue — requeue
    expired leases each tick so crashed workers' cells return to the
    pool promptly, log depth, and regenerate each experiment's report
    offline from the store the moment its cells are all present, while
    other experiments are still in flight. Exits when every experiment
    reported, or when the queue drains without satisfying one (failed
    cells — their error log explains why). Returns
    ``{"reported": {id: result}, "pending": [ids], "queue": counts}``.
    """
    from repro.eval import experiments as exp
    from repro.eval.reporting import save_experiment

    if profile is None:
        profile = profile_from_env()
    experiments = list(dict.fromkeys(experiments))
    for experiment_id in experiments:
        _experiment_fn(experiment_id)  # validate all ids before any work
    store = ExperimentStore(store_path)
    queue = WorkQueue(store)
    reported: dict[str, object] = {}
    started = time.monotonic()
    try:
        for experiment_id in experiments:
            stats = exp.enqueue_matrix(experiment_id, profile, store=store)
            logger.info("serve: %s submitted: %s", experiment_id,
                        stats.describe())
        # Reports regenerate purely from the store; workers do the math.
        offline_profile = replace(profile, offline=True, store=None,
                                  workers=1)
        while True:
            maintenance = queue.requeue_expired()
            if maintenance["reopened"] or maintenance["quarantined"]:
                logger.warning(
                    "serve: requeued %d expired lease(s), quarantined %d",
                    maintenance["reopened"], maintenance["quarantined"],
                )
            counts = queue.counts()
            logger.info(
                "serve: depth open=%d claimed=%d done=%d failed=%d "
                "reported=%d/%d",
                counts["open"], counts["claimed"], counts["done"],
                counts["failed"], len(reported), len(experiments),
            )
            for experiment_id in experiments:
                if experiment_id in reported:
                    continue
                try:
                    result = _experiment_fn(experiment_id)(
                        replace(offline_profile, store=store_path)
                    )
                except ExperimentError:
                    continue  # cells still missing; keep dispatching
                reported[experiment_id] = result
                logger.info("serve: %s report ready", experiment_id)
                if report_dir is not None:
                    path = save_experiment(result, results_dir=report_dir)
                    logger.info("serve: %s saved to %s", experiment_id, path)
            if len(reported) == len(experiments):
                break
            if counts["open"] + counts["claimed"] == 0:
                logger.error(
                    "serve: queue drained but %d experiment(s) "
                    "unreported — %d cell(s) quarantined as failed "
                    "(see repro-store errors)",
                    len(experiments) - len(reported), counts["failed"],
                )
                break
            if timeout_s is not None and time.monotonic() - started > timeout_s:
                logger.error("serve: timed out after %.0fs", timeout_s)
                break
            time.sleep(interval)
    finally:
        final_counts = WorkQueue(store).counts()
        store.close()
    return {
        "reported": reported,
        "pending": [e for e in experiments if e not in reported],
        "queue": final_counts,
    }


# -- command-line entry points -----------------------------------------------


def _add_logging_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="log warnings and errors only")


def _setup_logging(quiet: bool) -> None:
    logging.basicConfig(
        level=logging.WARNING if quiet else logging.INFO,
        format="%(asctime)s %(levelname)s %(message)s",
    )


def main_worker(argv: Sequence[str] | None = None) -> int:
    """Long-lived queue worker: claim cells from a store, compute, commit."""
    parser = argparse.ArgumentParser(
        prog="repro-worker", description=main_worker.__doc__
    )
    parser.add_argument("--store", metavar="PATH",
                        default=os.environ.get("REPRO_STORE"),
                        help="experiment store holding the queue "
                             "(default: REPRO_STORE)")
    parser.add_argument("--batch", type=int, default=4,
                        help="cells claimed per transaction (default: 4)")
    parser.add_argument("--lease", type=float, default=DEFAULT_LEASE_S,
                        metavar="S",
                        help="claim lease in seconds; renewed by heartbeat "
                             f"(default: {DEFAULT_LEASE_S:.0f})")
    parser.add_argument("--poll", type=float, default=1.0, metavar="S",
                        help="idle poll interval (default: 1.0)")
    parser.add_argument("--drain", action="store_true",
                        help="exit when the queue is empty instead of "
                             "polling forever")
    parser.add_argument("--max-cells", type=int, default=None, metavar="N",
                        help="stop after settling N cells")
    parser.add_argument("--owner", default=None,
                        help="worker identity (default: host:pid:random)")
    _add_logging_arg(parser)
    args = parser.parse_args(argv)
    if args.store is None:
        parser.error("--store (or REPRO_STORE) is required")
    if args.batch < 1:
        parser.error("--batch must be >= 1")
    if args.lease <= 0:
        parser.error("--lease must be > 0")
    _setup_logging(args.quiet)
    outcome = worker_loop(
        args.store, owner=args.owner, batch=args.batch, lease_s=args.lease,
        poll_s=args.poll, drain=args.drain, max_cells=args.max_cells,
    )
    print(f"worker {outcome['owner']}: {outcome['computed']} computed, "
          f"{outcome['failed']} failed")
    return 0 if outcome["failed"] == 0 else 1


def main_serve(argv: Sequence[str] | None = None) -> int:
    """Queue dispatcher: submit matrix experiments, watch the queue,
    regenerate reports from the store as results land."""
    from repro.eval import experiments as exp

    parser = argparse.ArgumentParser(
        prog="repro-serve", description=main_serve.__doc__
    )
    parser.add_argument("experiments", nargs="+",
                        choices=sorted(exp.MATRIX_POLICIES),
                        help="matrix experiments to submit")
    parser.add_argument("--store", metavar="PATH",
                        default=os.environ.get("REPRO_STORE"),
                        help="experiment store holding the queue "
                             "(default: REPRO_STORE)")
    parser.add_argument("--interval", type=float, default=2.0, metavar="S",
                        help="dispatch tick in seconds (default: 2.0)")
    parser.add_argument("--report-dir", metavar="DIR", default=None,
                        help="write each report (.txt + .json) under DIR "
                             "as it becomes available")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="give up after S seconds (default: wait "
                             "forever)")
    _add_logging_arg(parser)
    args = parser.parse_args(argv)
    if args.store is None:
        parser.error("--store (or REPRO_STORE) is required")
    _setup_logging(args.quiet)
    try:
        profile = profile_from_env()
        outcome = serve_loop(
            args.store, args.experiments, profile=profile,
            interval=args.interval, report_dir=args.report_dir,
            timeout_s=args.timeout,
        )
    except ExperimentError as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 2
    counts = outcome["queue"]
    print(f"serve: {len(outcome['reported'])}/{len(args.experiments)} "
          f"report(s) generated; queue done={counts['done']} "
          f"failed={counts['failed']}")
    return 0 if not outcome["pending"] else 1


if __name__ == "__main__":  # pragma: no cover - manual dispatch helper
    # ``python -m repro.eval.service worker|serve ...`` — the form tests
    # and CI use when console scripts are not installed.
    if len(sys.argv) > 1 and sys.argv[1] in ("worker", "serve"):
        mode, rest = sys.argv[1], sys.argv[2:]
        sys.exit(main_worker(rest) if mode == "worker" else main_serve(rest))
    print("usage: python -m repro.eval.service {worker|serve} ...",
          file=sys.stderr)
    sys.exit(2)
