"""ASCII chart rendering — terminal-friendly stand-ins for the figures.

The paper's figures are bar/line charts; the harness archives their data
as tables, and these helpers render the same data as horizontal bar
charts (optionally stacked, for Fig. 5's energy breakdown) so the shape
of each result is visible directly in the benchmark log.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import ExperimentError

#: Glyphs for stacked-bar segments, in series order.
_SEGMENT_GLYPHS = "#=+*o%"


def render_bar_chart(
    items: Sequence[tuple[str, float]],
    width: int = 48,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart of (label, value) pairs.

    Values must be non-negative; bars are scaled to the maximum.
    """
    if not items:
        raise ExperimentError("cannot chart zero items")
    if any(v < 0 for _, v in items):
        raise ExperimentError("bar chart values must be non-negative")
    peak = max(v for _, v in items) or 1.0
    label_width = max(len(label) for label, _ in items)
    lines = [title] if title else []
    for label, value in items:
        bar = "#" * max(1 if value > 0 else 0, round(width * value / peak))
        lines.append(
            f"{label.ljust(label_width)} |{bar.ljust(width)}| "
            f"{value:.3g}{unit}"
        )
    return "\n".join(lines)


def render_stacked_chart(
    rows: Sequence[tuple[str, Mapping[str, float]]],
    width: int = 48,
    title: str | None = None,
) -> str:
    """Stacked horizontal bars (e.g. Fig. 5's leakage/rw/shift split).

    All rows are scaled against the largest row total; a legend maps each
    series to its glyph.
    """
    if not rows:
        raise ExperimentError("cannot chart zero rows")
    series: list[str] = []
    for _, parts in rows:
        for name in parts:
            if name not in series:
                series.append(name)
    if len(series) > len(_SEGMENT_GLYPHS):
        raise ExperimentError(
            f"at most {len(_SEGMENT_GLYPHS)} series supported, got {len(series)}"
        )
    glyph = {name: _SEGMENT_GLYPHS[i] for i, name in enumerate(series)}
    totals = [sum(parts.values()) for _, parts in rows]
    if any(t < 0 for t in totals):
        raise ExperimentError("stacked chart values must be non-negative")
    peak = max(totals) or 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = [title] if title else []
    for (label, parts), total in zip(rows, totals):
        bar = ""
        for name in series:
            value = parts.get(name, 0.0)
            bar += glyph[name] * round(width * value / peak)
        lines.append(
            f"{label.ljust(label_width)} |{bar.ljust(width)}| {total:.3g}"
        )
    legend = "  ".join(f"{glyph[name]}={name}" for name in series)
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def render_series_chart(
    x_labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
    width: int = 48,
    title: str | None = None,
) -> str:
    """Grouped bars: one block per x position, one bar per series.

    The shape Fig. 6 uses (metrics on x, one bar per DBC count).
    """
    if not x_labels or not series:
        raise ExperimentError("need at least one x position and one series")
    for name, values in series.items():
        if len(values) != len(x_labels):
            raise ExperimentError(
                f"series {name!r} has {len(values)} values for "
                f"{len(x_labels)} x positions"
            )
    lines = [title] if title else []
    flat = [v for values in series.values() for v in values]
    if any(v < 0 for v in flat):
        raise ExperimentError("series values must be non-negative")
    peak = max(flat) or 1.0
    name_width = max(len(n) for n in series)
    for i, x in enumerate(x_labels):
        lines.append(f"{x}:")
        for name, values in series.items():
            value = values[i]
            bar = "#" * max(1 if value > 0 else 0, round(width * value / peak))
            lines.append(
                f"  {name.ljust(name_width)} |{bar.ljust(width)}| {value:.3g}"
            )
    return "\n".join(lines)
