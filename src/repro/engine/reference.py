"""Per-access Python reference backend.

The oracle implementation: one :func:`repro.engine.semantics.step` per
access, in trace order, exactly as a cycle-by-cycle controller would
issue them. It is deliberately unoptimized — its job is to pin down the
semantics the vectorized backend must reproduce, and to stay readable
enough to audit against the paper.
"""

from __future__ import annotations

import numpy as np

from repro.engine.semantics import port_positions, step
from repro.engine.types import ShiftRequest, ShiftResult


class ReferenceBackend:
    """Executes requests with a per-access Python loop (the oracle)."""

    name = "reference"

    def run(self, request: ShiftRequest) -> ShiftResult:
        init_offsets, init_aligned = request.resolved_init()
        positions = port_positions(request.domains, request.ports)
        offsets = init_offsets.tolist()
        aligned = init_aligned.tolist()
        per_dbc = [0] * request.num_dbcs
        for d, s in zip(request.dbc.tolist(), request.slot.tolist()):
            offsets[d], cost = step(
                positions, request.domains, offsets[d], aligned[d], s,
                request.policy, request.warm_start,
            )
            aligned[d] = True
            per_dbc[d] += cost
        return ShiftResult(
            accesses=request.accesses,
            shifts=sum(per_dbc),
            per_dbc_shifts=tuple(per_dbc),
            final_offsets=np.asarray(offsets, dtype=np.int64),
            final_aligned=np.asarray(aligned, dtype=bool),
        )
