"""Per-access Python reference backend.

The oracle implementation: one :func:`repro.engine.semantics.step` per
access, in trace order, exactly as a cycle-by-cycle controller would
issue them. It is deliberately unoptimized — its job is to pin down the
semantics the vectorized backend must reproduce, and to stay readable
enough to audit against the paper.
"""

from __future__ import annotations

import numpy as np

from repro.engine.faults import FaultObservation
from repro.engine.semantics import port_positions, step
from repro.engine.types import ShiftRequest, ShiftResult


class ReferenceBackend:
    """Executes requests with a per-access Python loop (the oracle)."""

    name = "reference"

    def run(self, request: ShiftRequest) -> ShiftResult:
        init_offsets, init_aligned = request.resolved_init()
        positions = port_positions(request.domains, request.ports)
        offsets = init_offsets.tolist()
        aligned = init_aligned.tolist()
        per_dbc = [0] * request.num_dbcs
        if request.fault is not None:
            return self._run_faulted(
                request, positions, offsets, aligned, per_dbc
            )
        for d, s in zip(request.dbc.tolist(), request.slot.tolist()):
            offsets[d], cost = step(
                positions, request.domains, offsets[d], aligned[d], s,
                request.policy, request.warm_start,
            )
            aligned[d] = True
            per_dbc[d] += cost
        return ShiftResult(
            accesses=request.accesses,
            shifts=sum(per_dbc),
            per_dbc_shifts=tuple(per_dbc),
            final_offsets=np.asarray(offsets, dtype=np.int64),
            final_aligned=np.asarray(aligned, dtype=bool),
        )

    def _run_faulted(self, request, positions, offsets, aligned, per_dbc):
        """Same per-access loop, plus the per-DBC drift a fault evolves.

        The believed dynamics (offsets, charged shifts) are untouched:
        a fault only moves the physical track one extra/one fewer
        domain in the shift direction, tracked as ``drift = physical -
        believed``. An access that charges no shifts (zero delta, or a
        warm-start free first alignment) cannot fault.
        """
        pending = request.fault.pending(
            request.dbc, request.access_base
        ).tolist()
        drifts = request.resolved_init_drifts().tolist()
        injected = 0
        misaligned = 0
        corrupted = False
        envelope = request.domains - 1
        for i, (d, s) in enumerate(
            zip(request.dbc.tolist(), request.slot.tolist())
        ):
            was_aligned = aligned[d]
            old = offsets[d]
            offsets[d], cost = step(
                positions, request.domains, old, was_aligned, s,
                request.policy, request.warm_start,
            )
            aligned[d] = True
            per_dbc[d] += cost
            delta = offsets[d] - old
            shifted = delta != 0 and (was_aligned or not request.warm_start)
            if shifted and pending[i] != 0:
                drifts[d] += pending[i] if delta > 0 else -pending[i]
                injected += 1
            if drifts[d] != 0:
                misaligned += 1
                if abs(offsets[d] + drifts[d]) > envelope:
                    corrupted = True
        return ShiftResult(
            accesses=request.accesses,
            shifts=sum(per_dbc),
            per_dbc_shifts=tuple(per_dbc),
            final_offsets=np.asarray(offsets, dtype=np.int64),
            final_aligned=np.asarray(aligned, dtype=bool),
            faults=FaultObservation(
                injected=injected,
                misaligned=misaligned,
                final_drifts=np.asarray(drifts, dtype=np.int64),
                corrupted=corrupted,
            ),
        )
