"""Scalar shift semantics — the single source of truth.

Everything that defines what a shift *is* lives here: where the access
ports of a nanotrack sit, which port a controller picks for an access,
and how one access advances a DBC's shift state. The per-access device
model (:mod:`repro.rtm.device`), the trace-driven simulator and the
analytic cost model all reduce to these primitives, so they agree by
construction rather than by parallel implementation.

A nanotrack with ``p`` ports has them spread evenly along its ``K``
domains; all tracks of a DBC shift in lock-step (Sec. II-A of the
paper), so port geometry is a per-DBC property. The *selection policy*
decides which port serves an access; ``nearest`` is the standard
minimal-shift controller behaviour (as in RTSim).
"""

from __future__ import annotations

from enum import Enum
from functools import lru_cache

from repro.errors import GeometryError, SimulationError


class PortPolicy(str, Enum):
    """How the controller picks a port for an access."""

    #: Use whichever port needs the fewest shifts (RTSim default).
    NEAREST = "nearest"
    #: Always use port 0 (pessimistic single-port-equivalent behaviour).
    STATIC = "static"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@lru_cache(maxsize=1024)
def port_positions(domains: int, ports: int) -> tuple[int, ...]:
    """Domain indices of ``ports`` evenly spread ports on a ``domains`` track.

    Ports sit at the centres of equal-length segments: one port on a
    64-domain track sits at 32; two ports at 16 and 48. This mirrors the
    overlapped-region layout of multi-port RTM proposals.
    """
    if domains < 1:
        raise GeometryError(f"domains must be >= 1, got {domains}")
    if not 1 <= ports <= domains:
        raise GeometryError(
            f"ports must be in [1, {domains}], got {ports}"
        )
    positions = []
    for j in range(ports):
        pos = (2 * j + 1) * domains // (2 * ports)
        positions.append(min(pos, domains - 1))
    if len(set(positions)) != len(positions):
        raise GeometryError(
            f"{ports} ports on {domains} domains collide at {positions}"
        )
    return tuple(positions)


@lru_cache(maxsize=1024)
def port_boundaries(domains: int, ports: int) -> tuple[int, ...]:
    """Nearest-port decision thresholds between adjacent port positions.

    A target position ``t`` (an access location minus the track offset)
    is served by port ``j`` exactly when ``boundaries[j-1] < t <=
    boundaries[j]`` — i.e. ``j = bisect_left(boundaries, t)``. The
    threshold between adjacent ports is the floor midpoint of their
    positions: an integer ``t`` at the exact midpoint is equidistant and
    the tie goes to the lower port index, matching
    :func:`select_port`'s strict-< comparison.
    """
    positions = port_positions(domains, ports)
    return tuple(
        (positions[j] + positions[j + 1]) // 2 for j in range(ports - 1)
    )


def select_port(
    positions: tuple[int, ...],
    offset: int,
    location: int,
    policy: PortPolicy = PortPolicy.NEAREST,
) -> tuple[int, int]:
    """Choose a port for accessing ``location`` given the track ``offset``.

    The track's current shift offset ``offset`` means the domain under
    port ``j`` is ``positions[j] + offset``. Returns ``(port_index,
    signed_shift)`` where ``signed_shift`` is added to the offset to align
    ``location`` under the chosen port (its absolute value is the shift
    count). Ties go to the lowest port index.
    """
    if policy is PortPolicy.STATIC:
        return 0, location - positions[0] - offset
    best_j, best_delta = 0, location - positions[0] - offset
    for j in range(1, len(positions)):
        delta = location - positions[j] - offset
        if abs(delta) < abs(best_delta):
            best_j, best_delta = j, delta
    return best_j, best_delta


def step(
    positions: tuple[int, ...],
    domains: int,
    offset: int,
    aligned: bool,
    location: int,
    policy: PortPolicy = PortPolicy.NEAREST,
    warm_start: bool = True,
) -> tuple[int, int]:
    """Advance one DBC by one access: ``(new_offset, charged_shifts)``.

    ``aligned`` is False before a DBC's very first access; with
    ``warm_start`` that first alignment is free (the cost convention fixed
    by the paper's Fig. 3 arithmetic) while the offset still moves, so
    subsequent accesses behave identically either way.
    """
    if not 0 <= location < domains:
        raise SimulationError(
            f"location {location} outside track of {domains} domains"
        )
    _port, delta = select_port(positions, offset, location, policy)
    new_offset = offset + delta
    # offset = location - port_position with both in [0, K-1], so any
    # reachable state satisfies |offset| <= K-1.
    if abs(new_offset) > domains - 1:
        raise SimulationError(
            f"track offset {new_offset} exceeds physical envelope "
            f"for {domains} domains"
        )
    cost = 0 if (not aligned and warm_start) else abs(delta)
    return new_offset, cost
