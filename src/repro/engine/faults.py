"""Deterministic shift-fault injection: the engine's robustness axis.

Real racetrack shifts over- and under-shoot — "Coding for Racetrack
Memories" (PAPERS.md) models exactly these position errors. A
:class:`FaultModel` attached to a :class:`~repro.engine.types
.ShiftRequest` injects *off-by-one* position faults into the replay:
with probability ``rate`` an access whose shift actually moves the
track (signed delta != 0) overshoots or undershoots by one domain.

The semantics are chosen so that the *believed* controller state is
untouched by faults:

* The controller does not know a fault happened, so it charges exactly
  the shifts it believes it issued — charged counters
  (``shifts``/``per_dbc_shifts``) and the believed ``final_offsets``
  are bit-identical to the clean replay. This is physically faithful
  (open-loop shifting has no position feedback) and is what lets the
  vectorized backend keep its monoid scan: faults become a pure
  post-pass over the clean replay's signed deltas.
* What a fault perturbs is the per-DBC *drift* — physical offset minus
  believed offset. Each fault event moves the drift by ±1 in the
  direction of the shift (overshoot extends it, undershoot truncates
  it); an access served while its DBC's drift is nonzero reads the
  wrong domain (a *misaligned* access); and if the physical offset
  ``believed + drift`` ever leaves the track envelope, data has been
  shifted off the end of the track — *undetected corruption*.

Determinism contract
--------------------

Fault draws are keyed by a counter-based RNG (splitmix64) on the
**absolute access index** ``access_base + i`` — not on any generator
state. Every backend (reference scalar loop, numpy scan, interpreted or
JIT numba kernel) consumes the same precomputed per-access draw array
from :meth:`FaultModel.pending`, and a :class:`~repro.engine.cursor
.ShiftCursor` passes the running access count as ``access_base`` per
chunk, so faulted replay is bit-identical across backends *and* across
any chunking of the trace. See ``docs/faults.md``.

A null model (effective rate 0 everywhere) is normalized away at
request construction: ``fault_rate=0`` runs the exact clean code path
and compares equal to a request with no model attached — the
zero-cost-when-off invariant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError

_MASK64 = (1 << 64) - 1

#: splitmix64 constants (Steele, Lea & Flood; public domain reference).
_SM_GAMMA = 0x9E3779B97F4A7C15
_SM_MUL1 = 0xBF58476D1CE4E5B9
_SM_MUL2 = 0x94D049BB133111EB


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a uint64 array (wraps mod 2^64)."""
    z = (x + np.uint64(_SM_GAMMA)).astype(np.uint64)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_SM_MUL1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_SM_MUL2)
    return z ^ (z >> np.uint64(31))


@dataclass(frozen=True)
class FaultModel:
    """Seed-deterministic per-shift off-by-one fault model.

    Attributes
    ----------
    rate:
        Probability in ``[0, 1]`` that a track-moving shift overshoots
        or undershoots by one domain.
    seed:
        Stream selector for the counter-based RNG; two models with
        different seeds draw independent fault patterns.
    dbc_skew:
        Optional per-DBC rate multipliers, cycled over the DBC index
        (``effective_rate(d) = min(1, rate * dbc_skew[d % len])``) —
        models tracks with uneven shift reliability.
    """

    rate: float
    seed: int = 0
    dbc_skew: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        rate = float(self.rate)
        if not math.isfinite(rate) or not 0.0 <= rate <= 1.0:
            raise SimulationError(
                f"fault rate must be a probability in [0, 1], got {self.rate!r}"
            )
        object.__setattr__(self, "rate", rate)
        object.__setattr__(self, "seed", int(self.seed))
        if self.dbc_skew is not None:
            skew = tuple(float(s) for s in self.dbc_skew)
            if not skew:
                raise SimulationError("dbc_skew must not be empty (use None)")
            if any(not math.isfinite(s) or s < 0 for s in skew):
                raise SimulationError(
                    f"dbc_skew entries must be finite and >= 0, got {skew}"
                )
            object.__setattr__(self, "dbc_skew", skew)

    @property
    def is_null(self) -> bool:
        """True when no access can ever fault (effective rate 0 everywhere)."""
        if self.rate == 0.0:
            return True
        return self.dbc_skew is not None and max(self.dbc_skew) == 0.0

    def key_payload(self) -> list:
        """Canonical JSON-ready content for cache/store key hashing."""
        skew = list(self.dbc_skew) if self.dbc_skew is not None else None
        return [self.rate, self.seed, skew]

    def pending(self, dbc: np.ndarray, access_base: int = 0) -> np.ndarray:
        """Per-access fault draws for accesses ``access_base + [0, n)``.

        Returns an int8 array: ``0`` no fault, ``+1`` overshoot, ``-1``
        undershoot (the sign is *relative to the shift direction*; a
        zero-delta access never faults regardless of its draw). A pure
        function of ``(seed, absolute index, dbc)`` — every backend
        consumes this one vectorized implementation, which is what makes
        cross-backend and cross-chunking bit-identity trivial.
        """
        n = int(np.asarray(dbc).size)
        if access_base < 0:
            raise SimulationError(
                f"access_base must be >= 0, got {access_base}"
            )
        if n == 0:
            return np.zeros(0, dtype=np.int8)
        key = _splitmix64(
            np.array([self.seed & _MASK64], dtype=np.uint64)
        )[0]
        idx = np.arange(access_base, access_base + n, dtype=np.uint64)
        z = _splitmix64(idx ^ key)
        u = (z >> np.uint64(11)).astype(np.float64) * (2.0 ** -53)
        if self.dbc_skew is None:
            threshold = self.rate
        else:
            skew = np.asarray(self.dbc_skew, dtype=np.float64)
            threshold = np.minimum(
                self.rate * skew[np.asarray(dbc) % skew.size], 1.0
            )
        direction = np.where(
            (z & np.uint64(1)).astype(bool), np.int8(1), np.int8(-1)
        )
        return np.where(u < threshold, direction, np.int8(0))


@dataclass(frozen=True, eq=False)
class FaultObservation:
    """What the faults did during one replay (or one accumulated cursor).

    ``final_drifts`` is the per-DBC physical-minus-believed offset at
    the end of the replay; ``corrective_shifts`` counts shifts charged
    by scrubbing realigns (always 0 at the raw engine level — only the
    cursor/controller scrubbing layer issues them).
    """

    injected: int
    misaligned: int
    final_drifts: np.ndarray
    corrupted: bool
    corrective_shifts: int = 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultObservation):
            return NotImplemented
        return (
            self.injected == other.injected
            and self.misaligned == other.misaligned
            and self.corrupted == other.corrupted
            and self.corrective_shifts == other.corrective_shifts
            and np.array_equal(self.final_drifts, other.final_drifts)
        )

    def drift_histogram(self) -> tuple[tuple[int, int], ...]:
        """Sorted ``(drift, dbc_count)`` pairs over nonzero final drifts."""
        drifts = np.asarray(self.final_drifts)
        values, counts = np.unique(drifts[drifts != 0], return_counts=True)
        return tuple((int(v), int(c)) for v, c in zip(values, counts))


def empty_observation(init_drifts: np.ndarray) -> FaultObservation:
    """The observation of a zero-access replay: carry-in passes through."""
    return FaultObservation(
        injected=0,
        misaligned=0,
        final_drifts=np.asarray(init_drifts, dtype=np.int64).copy(),
        corrupted=False,
    )


def observe_faults_sorted(
    model: FaultModel,
    *,
    dbc: np.ndarray,
    order: np.ndarray,
    delta: np.ndarray,
    offset_after: np.ndarray,
    run_first: np.ndarray,
    first_idx: np.ndarray,
    first_dbc: np.ndarray,
    last_idx: np.ndarray,
    domains: int,
    access_base: int,
    init_drifts: np.ndarray,
) -> FaultObservation:
    """Vectorized fault post-pass over a clean replay's signed deltas.

    Inputs follow the numpy backend's run-sorted layout: ``order`` is
    the stable sort by DBC, ``delta``/``offset_after`` the per-access
    signed believed-offset change and believed offset after the access
    (both in sorted order), ``run_first``/``first_idx``/``first_dbc``/
    ``last_idx`` the run structure. Because faults never feed back into
    the believed dynamics, the drift of access ``i`` is simply the
    run-local prefix sum of its fault events plus the carried drift —
    one global ``cumsum`` with a per-run base correction.
    """
    pending = model.pending(dbc, access_base)[order].astype(np.int64)
    events = pending * np.sign(delta)
    csum = np.cumsum(events)
    run_id = np.cumsum(run_first) - 1
    base = (csum[first_idx] - events[first_idx]) - init_drifts[first_dbc]
    drift_after = csum - base[run_id]
    final = np.asarray(init_drifts, dtype=np.int64).copy()
    final[first_dbc] = drift_after[last_idx]
    return FaultObservation(
        injected=int(np.count_nonzero(events)),
        misaligned=int(np.count_nonzero(drift_after)),
        final_drifts=final,
        corrupted=bool(
            np.any(np.abs(offset_after + drift_after) > domains - 1)
        ),
    )


__all__ = [
    "FaultModel",
    "FaultObservation",
    "empty_observation",
    "observe_faults_sorted",
]
