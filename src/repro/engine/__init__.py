"""The shift engine: one kernel behind the simulator and the cost model.

Shift semantics used to live in three places — the per-access device
model, the controller's execute loop and the analytic cost model — and
keeping them consistent required parallel implementations "agreeing by
construction (tested)". This package is the consolidation: the scalar
semantics (:mod:`repro.engine.semantics`) define what a shift is, and two
interchangeable *backends* execute whole batches of accesses:

* ``reference`` — the per-access Python loop, kept as the oracle;
* ``numpy``     — batched vectorized execution (the default), an order
  of magnitude faster on realistic traces.

Backends implement ``run(ShiftRequest) -> ShiftResult`` and are
guaranteed to produce identical counters (enforced by the equivalence
test matrix). Select one globally via the ``REPRO_BACKEND`` environment
variable, or per call site via the ``backend=`` parameters threaded
through :func:`repro.rtm.sim.simulate`, :func:`repro.core.cost.shift_cost`
and :func:`repro.eval.runner.run_matrix`.

On top of the per-request backends, :mod:`repro.engine.batch` scores
whole *populations* of candidate placements (:func:`evaluate_batch`) and
prices neighbor moves incrementally (:class:`DeltaCost`) — the layer the
search-based placement algorithms are built on.
"""

from __future__ import annotations

import os

from repro.engine.batch import (
    DeltaCost,
    evaluate_batch,
    stack_candidate_arrays,
)
from repro.engine.compile import (
    ArenaSpec,
    SharedTraceArena,
    clear_compile_caches,
    compile_access_arrays,
    trace_fingerprint,
    try_create_arena,
)
from repro.engine.cursor import ShiftCursor
from repro.engine.numpy_backend import NumpyBackend, single_port_warm_total
from repro.engine.reference import ReferenceBackend
from repro.engine.semantics import PortPolicy, port_positions, select_port, step
from repro.engine.types import ShiftRequest, ShiftResult
from repro.errors import SimulationError

#: Registry of interchangeable backends (stateless, shared instances).
_BACKENDS = {
    ReferenceBackend.name: ReferenceBackend(),
    NumpyBackend.name: NumpyBackend(),
}

DEFAULT_BACKEND = NumpyBackend.name


def available_backends() -> tuple[str, ...]:
    """Names of the registered engine backends."""
    return tuple(sorted(_BACKENDS))


def get_backend(backend: object = None):
    """Resolve a backend from a name, an instance, or the environment.

    ``None`` resolves to the ``REPRO_BACKEND`` environment variable and
    falls back to the numpy backend; a string is looked up in the
    registry; anything exposing ``run`` is returned unchanged.
    """
    if backend is None:
        backend = os.environ.get("REPRO_BACKEND", DEFAULT_BACKEND)
    if isinstance(backend, str):
        try:
            return _BACKENDS[backend]
        except KeyError:
            raise SimulationError(
                f"unknown engine backend {backend!r}; "
                f"available: {', '.join(available_backends())}"
            ) from None
    if hasattr(backend, "run"):
        return backend
    raise SimulationError(
        f"expected a backend name or instance, got {type(backend).__name__}"
    )


__all__ = [
    "ArenaSpec",
    "DEFAULT_BACKEND",
    "DeltaCost",
    "NumpyBackend",
    "PortPolicy",
    "ReferenceBackend",
    "SharedTraceArena",
    "ShiftCursor",
    "ShiftRequest",
    "ShiftResult",
    "available_backends",
    "clear_compile_caches",
    "compile_access_arrays",
    "evaluate_batch",
    "get_backend",
    "port_positions",
    "select_port",
    "single_port_warm_total",
    "stack_candidate_arrays",
    "step",
    "trace_fingerprint",
    "try_create_arena",
]
