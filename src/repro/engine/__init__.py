"""The shift engine: one kernel behind the simulator and the cost model.

Shift semantics used to live in three places — the per-access device
model, the controller's execute loop and the analytic cost model — and
keeping them consistent required parallel implementations "agreeing by
construction (tested)". This package is the consolidation: the scalar
semantics (:mod:`repro.engine.semantics`) define what a shift is, and
interchangeable *backends* execute whole batches of accesses:

* ``reference`` — the per-access Python loop, kept as the oracle;
* ``numpy``     — batched vectorized execution (the default), an order
  of magnitude faster on realistic traces;
* ``numba``     — optional JIT-compiled fused loops
  (:mod:`repro.engine.numba_backend`), registered only when the
  ``compiled`` extra is installed;
* ``auto``      — not a backend but an alias: resolves to the fastest
  *available* backend through a one-shot cached micro-calibration.

Backends implement ``run(ShiftRequest) -> ShiftResult`` and are
guaranteed to produce identical counters (enforced by the cross-backend
differential oracle, which iterates :func:`available_backends` so new
backends inherit the coverage). Select one globally via the
``REPRO_BACKEND`` environment variable, or per call site via the
``backend=`` parameters threaded through
:func:`repro.rtm.sim.simulate`, :func:`repro.core.cost.shift_cost` and
:func:`repro.eval.runner.run_matrix`.

On top of the per-request backends, :mod:`repro.engine.batch` scores
whole *populations* of candidate placements (:func:`evaluate_batch`) and
prices neighbor moves incrementally (:class:`DeltaCost`) — the layer the
search-based placement algorithms are built on.
"""

from __future__ import annotations

import os

from repro.engine import numba_backend as _numba_backend
from repro.engine.batch import (
    DeltaCost,
    evaluate_batch,
    stack_candidate_arrays,
)
from repro.engine.compile import (
    ArenaSpec,
    SharedTraceArena,
    clear_compile_caches,
    compile_access_arrays,
    trace_fingerprint,
    try_create_arena,
)
from repro.engine.cursor import ShiftCursor
from repro.engine.faults import FaultModel, FaultObservation
from repro.engine.numba_backend import NumbaBackend
from repro.engine.numpy_backend import NumpyBackend, single_port_warm_total
from repro.engine.reference import ReferenceBackend
from repro.engine.semantics import PortPolicy, port_positions, select_port, step
from repro.engine.types import ShiftRequest, ShiftResult
from repro.errors import SimulationError

#: Registry of interchangeable backends (stateless, shared instances).
#: Optional backends join only when their import gate passed — with the
#: ``compiled`` extra absent, the registry is exactly the core pair.
_BACKENDS = {
    ReferenceBackend.name: ReferenceBackend(),
    NumpyBackend.name: NumpyBackend(),
}
if _numba_backend.NUMBA_AVAILABLE:  # pragma: no cover - needs the extra
    _BACKENDS[NumbaBackend.name] = NumbaBackend()

DEFAULT_BACKEND = NumpyBackend.name

#: The calibrating alias accepted wherever a backend name is (not a
#: registered backend itself: it always resolves to one).
AUTO_BACKEND = "auto"

#: Optional backends the project knows about: name -> the extra that
#: installs them. Used for pointed errors and ``--list-backends`` even
#: when the backend is absent from the registry.
OPTIONAL_BACKEND_EXTRAS = {NumbaBackend.name: "compiled"}

_DIST_NAME = "repro-rtm-placement"

_BACKEND_NOTES = {
    ReferenceBackend.name: "per-access Python oracle",
    NumpyBackend.name: "vectorized monoid-scan replay (default)",
    NumbaBackend.name: "JIT-compiled fused replay loops",
}


def _install_hint(name: str) -> str:
    return f"pip install {_DIST_NAME}[{OPTIONAL_BACKEND_EXTRAS[name]}]"


def available_backends() -> tuple[str, ...]:
    """Names of the registered engine backends."""
    return tuple(sorted(_BACKENDS))


def backend_choices() -> tuple[str, ...]:
    """Every name a ``--backend`` flag accepts.

    Registered backends, plus the :data:`AUTO_BACKEND` alias, plus
    known-but-uninstalled optional backends — the latter so selecting
    one yields the pointed install hint instead of an argparse "invalid
    choice" that never mentions the extra.
    """
    return tuple(
        sorted(set(_BACKENDS) | set(OPTIONAL_BACKEND_EXTRAS) | {AUTO_BACKEND})
    )


def describe_backends() -> tuple[tuple[str, bool, str], ...]:
    """``(name, available, note)`` rows for every known backend.

    Unavailable optional backends carry their install hint in the note;
    the ``auto`` alias leads the list.
    """
    rows = [(
        AUTO_BACKEND, True,
        "alias: fastest available backend (one-shot micro-calibration)",
    )]
    for name in sorted(set(_BACKENDS) | set(OPTIONAL_BACKEND_EXTRAS)):
        if name in _BACKENDS:
            rows.append((name, True, _BACKEND_NOTES.get(name, "")))
        else:
            rows.append((name, False, f"not installed — {_install_hint(name)}"))
    return tuple(rows)


def _unknown_backend_error(name: str) -> SimulationError:
    if name in OPTIONAL_BACKEND_EXTRAS:
        return SimulationError(
            f"engine backend {name!r} is not installed; it needs the "
            f"optional {OPTIONAL_BACKEND_EXTRAS[name]!r} extra: "
            f"{_install_hint(name)}"
        )
    return SimulationError(
        f"unknown engine backend {name!r}; "
        f"available: {', '.join(available_backends())} "
        f"(or {AUTO_BACKEND!r} for the fastest available)"
    )


# -- auto-selection ----------------------------------------------------------

#: Cached result of the one-shot micro-calibration (process-wide).
_AUTO_RESOLVED: str | None = None

#: Backends ``auto`` calibrates between, in tie-break order. The
#: reference oracle is deliberately not a candidate — it exists to pin
#: semantics, not to win benchmarks.
_AUTO_CANDIDATES = (NumpyBackend.name, NumbaBackend.name)

#: Size of the calibration request: long enough that per-call overhead
#: (JIT dispatch, numpy setup) does not decide the race, short enough
#: that calibration stays in the tens of milliseconds.
_CALIBRATE_ACCESSES = 20_000
_CALIBRATE_REPEATS = 3


def _calibrate_auto() -> str:
    """Race the candidate backends once on a representative request.

    Each candidate runs once outside the clock (JIT compilation, table
    caches) and then best-of-:data:`_CALIBRATE_REPEATS`; the fastest
    steady-state time wins. With a single candidate installed there is
    nothing to race and no timing runs at all.
    """
    import time

    import numpy as np

    names = [n for n in _AUTO_CANDIDATES if n in _BACKENDS]
    if len(names) == 1:
        return names[0]
    rng = np.random.default_rng(0)
    request = ShiftRequest(
        dbc=rng.integers(0, 8, _CALIBRATE_ACCESSES),
        slot=rng.integers(0, 64, _CALIBRATE_ACCESSES),
        num_dbcs=8,
        domains=64,
        ports=2,
    )
    best_name, best_time = names[0], float("inf")
    for name in names:
        backend = _BACKENDS[name]
        backend.run(request)  # warmup: JIT compile / populate caches
        elapsed = float("inf")
        for _ in range(_CALIBRATE_REPEATS):
            started = time.perf_counter()
            backend.run(request)
            elapsed = min(elapsed, time.perf_counter() - started)
        if elapsed < best_time:
            best_name, best_time = name, elapsed
    return best_name


def resolve_auto_backend() -> str:
    """The concrete backend name ``auto`` resolves to (cached)."""
    global _AUTO_RESOLVED
    if _AUTO_RESOLVED is None:
        _AUTO_RESOLVED = _calibrate_auto()
    return _AUTO_RESOLVED


def _reset_auto_cache() -> None:
    """Drop the cached calibration result (tests only)."""
    global _AUTO_RESOLVED
    _AUTO_RESOLVED = None


def resolve_backend_name(name: str) -> str:
    """Concrete registered backend name for ``name``.

    ``auto`` resolves through the cached micro-calibration; registered
    names pass through; anything else raises the pointed error (with the
    install hint when the name is a known optional backend). The matrix
    runner resolves through this *in the parent process* so cell keys
    and pool workers always see one concrete name — ``auto`` can never
    calibrate differently across a worker pool.
    """
    if name == AUTO_BACKEND:
        return resolve_auto_backend()
    if name in _BACKENDS:
        return name
    raise _unknown_backend_error(name)


def get_backend(backend: object = None):
    """Resolve a backend from a name, an instance, or the environment.

    ``None`` resolves to the ``REPRO_BACKEND`` environment variable and
    falls back to the numpy backend; a string is looked up in the
    registry (``auto`` resolves to the fastest available backend first);
    anything exposing a callable ``run`` is returned unchanged.
    """
    if backend is None:
        backend = os.environ.get("REPRO_BACKEND", DEFAULT_BACKEND)
    if isinstance(backend, str):
        return _BACKENDS[resolve_backend_name(backend)]
    run = getattr(backend, "run", None)
    if callable(run):
        return backend
    raise SimulationError(
        f"expected a backend name or instance, got {type(backend).__name__}"
        + ("" if run is None else " with a non-callable 'run' attribute")
    )


__all__ = [
    "AUTO_BACKEND",
    "ArenaSpec",
    "DEFAULT_BACKEND",
    "DeltaCost",
    "FaultModel",
    "FaultObservation",
    "NumbaBackend",
    "NumpyBackend",
    "OPTIONAL_BACKEND_EXTRAS",
    "PortPolicy",
    "ReferenceBackend",
    "SharedTraceArena",
    "ShiftCursor",
    "ShiftRequest",
    "ShiftResult",
    "available_backends",
    "backend_choices",
    "clear_compile_caches",
    "compile_access_arrays",
    "describe_backends",
    "evaluate_batch",
    "get_backend",
    "port_positions",
    "resolve_auto_backend",
    "resolve_backend_name",
    "select_port",
    "single_port_warm_total",
    "stack_candidate_arrays",
    "step",
    "trace_fingerprint",
    "try_create_arena",
]
