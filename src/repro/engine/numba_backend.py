"""JIT-compiled (numba) backend: fused per-DBC replay loops.

The numpy backend removed the per-access Python interpreter from replay
but still pays array-op dispatch on every block of its monoid scan; this
backend removes the dispatch too. One ``@njit``-compiled loop walks the
accesses in trace order carrying the per-DBC state exactly as the
reference backend does — nearest-port selection is an unrolled ``p``-way
scalar comparison, not a map composition — so replay is a single fused
pass with no intermediate arrays at all. A second compiled kernel scores
whole candidate populations for :func:`repro.engine.batch.evaluate_batch`
(the alternative to ``_batch_nearest``'s flattened sort + 2-D scan).

Everything is integer arithmetic on int64, so results are bit-identical
to the reference backend by construction; the cross-backend differential
oracle (``tests/engine/test_backend_oracle.py``) enforces it.

Availability is gated at import time: numba ships through the optional
``compiled`` extra (``pip install repro-rtm-placement[compiled]``) and
the backend registers into the engine's registry only when the import
succeeds. The kernels themselves are *nopython-compatible plain Python*
— when numba is absent the ``njit`` decorator below degrades to the
identity, so the exact code the JIT compiles can still be executed (and
oracle-tested) interpreted via ``NumbaBackend(require_compiled=False)``.
That keeps the compiled semantics pinned on every machine, installed
extra or not.

Carry-in (``init_offsets``/``init_aligned``) flows straight through the
loop state, so :class:`~repro.engine.cursor.ShiftCursor` chunked replay
works unchanged and is chunk-size-invariant exactly as with the other
backends. JIT compilation happens on the first call per argument-type
signature (``warmup()`` forces it eagerly; the compiled benchmark
reports warmup separately from steady-state throughput).
"""

from __future__ import annotations

import time

import numpy as np

from repro.engine.faults import FaultObservation, empty_observation
from repro.engine.numpy_backend import positions_array
from repro.engine.semantics import PortPolicy
from repro.engine.types import ShiftRequest, ShiftResult
from repro.errors import SimulationError

try:  # pragma: no cover - exercised only with the extra installed
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
    NUMBA_VERSION: str | None = __import__("numba").__version__
except Exception:  # ImportError, or a broken llvmlite pairing
    NUMBA_AVAILABLE = False
    NUMBA_VERSION = None

    def _njit(*args, **kwargs):
        """Identity decorator: run the kernels as plain Python."""
        if args and callable(args[0]) and not kwargs:
            return args[0]

        def decorate(fn):
            return fn

        return decorate


#: Install hint threaded into every "numba is not installed" error.
INSTALL_HINT = "pip install repro-rtm-placement[compiled]"


@_njit(cache=True, nogil=True)
def _replay_kernel(dbc, slot, positions, offsets, aligned, per_dbc,
                   warm_start):
    """Fused replay: advance every access in trace order, in place.

    ``offsets``/``aligned`` enter as the carry-in state and leave as the
    final state; ``per_dbc`` accumulates charged shifts. The nearest-port
    choice is the same strict-< scan as :func:`semantics.select_port`
    (ties to the lowest port index); STATIC callers pass a single-entry
    ``positions`` slice, which degenerates to the port-0 choice.
    """
    n = dbc.shape[0]
    p = positions.shape[0]
    for i in range(n):
        d = dbc[i]
        s = slot[i]
        off = offsets[d]
        best = s - positions[0] - off
        best_abs = abs(best)
        for j in range(1, p):
            delta = s - positions[j] - off
            a = abs(delta)
            if a < best_abs:
                best = delta
                best_abs = a
        offsets[d] = off + best
        if aligned[d] or not warm_start:
            per_dbc[d] += best_abs
        aligned[d] = True


@_njit(cache=True, nogil=True)
def _replay_fault_kernel(dbc, slot, positions, domains, offsets, aligned,
                         per_dbc, warm_start, pending, drifts, counters):
    """Faulted replay: the clean kernel plus per-DBC drift evolution.

    ``pending`` holds the precomputed per-access fault draws (the RNG
    lives outside the kernel so interpreted and JIT runs consume
    identical uint64-free inputs); ``drifts`` enters as the carry-in
    physical-minus-believed drift and leaves as the final one;
    ``counters`` is ``[injected, misaligned, corrupted]``. The believed
    dynamics (offsets/aligned/per_dbc) are exactly the clean kernel's —
    a fault only moves the drift one domain in the shift direction, and
    only on an access that actually charged shifts.
    """
    n = dbc.shape[0]
    p = positions.shape[0]
    for i in range(n):
        d = dbc[i]
        s = slot[i]
        off = offsets[d]
        best = s - positions[0] - off
        best_abs = abs(best)
        for j in range(1, p):
            delta = s - positions[j] - off
            a = abs(delta)
            if a < best_abs:
                best = delta
                best_abs = a
        new_off = off + best
        offsets[d] = new_off
        charged = aligned[d] or not warm_start
        if charged:
            per_dbc[d] += best_abs
        aligned[d] = True
        if charged and best != 0 and pending[i] != 0:
            if best > 0:
                drifts[d] += pending[i]
            else:
                drifts[d] -= pending[i]
            counters[0] += 1
        dr = drifts[d]
        if dr != 0:
            counters[1] += 1
            phys = new_off + dr
            if phys > domains - 1 or phys < -(domains - 1):
                counters[2] = 1


@_njit(cache=True, nogil=True)
def _population_kernel(dbc, slot, positions, num_dbcs, warm_start):
    """Per-candidate totals for a gathered ``(K, N)`` population.

    Each row replays the whole trace from the default cold initial
    state (offset 0, unaligned) — the contract of
    :func:`repro.engine.batch.evaluate_batch`. The per-row scratch state
    is reused across rows, so the kernel allocates O(num_dbcs) once.
    """
    k = dbc.shape[0]
    n = dbc.shape[1]
    p = positions.shape[0]
    totals = np.zeros(k, dtype=np.int64)
    offsets = np.empty(num_dbcs, dtype=np.int64)
    aligned = np.empty(num_dbcs, dtype=np.bool_)
    for r in range(k):
        for d in range(num_dbcs):
            offsets[d] = 0
            aligned[d] = False
        total = 0
        for i in range(n):
            d = dbc[r, i]
            s = slot[r, i]
            off = offsets[d]
            best = s - positions[0] - off
            best_abs = abs(best)
            for j in range(1, p):
                delta = s - positions[j] - off
                a = abs(delta)
                if a < best_abs:
                    best = delta
                    best_abs = a
            offsets[d] = off + best
            if aligned[d] or not warm_start:
                total += best_abs
            aligned[d] = True
        totals[r] = total
    return totals


class NumbaBackend:
    """Executes requests through ``@njit``-compiled fused loops.

    Constructing the backend requires numba by default (with the
    pointed install hint when it is absent); tests pass
    ``require_compiled=False`` to run the identical kernel code
    interpreted, which pins the compiled semantics without the extra.
    """

    name = "numba"

    def __init__(self, *, require_compiled: bool = True) -> None:
        if require_compiled and not NUMBA_AVAILABLE:
            raise SimulationError(
                f"the {self.name!r} engine backend needs the optional "
                f"'compiled' extra; install it with: {INSTALL_HINT}"
            )

    def run(self, request: ShiftRequest) -> ShiftResult:
        init_offsets, init_aligned = request.resolved_init()
        n = request.accesses
        if n == 0:
            return ShiftResult(
                accesses=0,
                shifts=0,
                per_dbc_shifts=(0,) * request.num_dbcs,
                final_offsets=init_offsets.copy(),
                final_aligned=init_aligned.copy(),
                faults=(
                    empty_observation(request.resolved_init_drifts())
                    if request.fault is not None else None
                ),
            )
        slot = request.slot
        lo, hi = int(slot.min()), int(slot.max())
        if lo < 0 or hi >= request.domains:
            bad = lo if lo < 0 else hi
            raise SimulationError(
                f"location {bad} outside track of {request.domains} domains"
            )
        positions = positions_array(request.domains, request.ports)
        if request.policy is PortPolicy.STATIC:
            positions = positions[:1]  # port 0 always; stays contiguous
        offsets = init_offsets.copy()
        aligned = init_aligned.copy()
        per_dbc = np.zeros(request.num_dbcs, dtype=np.int64)
        faults = None
        if request.fault is not None:
            pending = np.ascontiguousarray(
                request.fault.pending(request.dbc, request.access_base),
                dtype=np.int64,
            )
            drifts = request.resolved_init_drifts().copy()
            counters = np.zeros(3, dtype=np.int64)
            _replay_fault_kernel(
                request.dbc, slot, positions, request.domains, offsets,
                aligned, per_dbc, request.warm_start, pending, drifts,
                counters,
            )
            faults = FaultObservation(
                injected=int(counters[0]),
                misaligned=int(counters[1]),
                final_drifts=drifts,
                corrupted=bool(counters[2]),
            )
        else:
            _replay_kernel(
                request.dbc, slot, positions, offsets, aligned, per_dbc,
                request.warm_start,
            )
        return ShiftResult(
            accesses=n,
            shifts=int(per_dbc.sum()),
            per_dbc_shifts=tuple(int(c) for c in per_dbc),
            final_offsets=offsets,
            final_aligned=aligned,
            faults=faults,
        )

    # -- population hook -----------------------------------------------------

    def population_nearest(
        self,
        dbc: np.ndarray,
        slot: np.ndarray,
        *,
        num_dbcs: int,
        domains: int,
        ports: int,
        warm_start: bool,
    ) -> np.ndarray:
        """Compiled scorer behind :func:`evaluate_batch`'s nearest branch.

        ``dbc``/``slot`` are the gathered ``(K, N)`` per-access matrices
        (already range-validated by the batch layer). Returns the
        ``(K,)`` int64 totals, bit-identical to the flattened-sort numpy
        path and to per-candidate reference replay.
        """
        positions = positions_array(domains, ports)
        return _population_kernel(
            np.ascontiguousarray(dbc, dtype=np.int64),
            np.ascontiguousarray(slot, dtype=np.int64),
            positions,
            num_dbcs,
            warm_start,
        )


def warmup() -> float:
    """Force JIT compilation of both kernels; returns the wall seconds.

    The first call per argument-type signature pays LLVM compilation
    (``cache=True`` amortizes it across processes via the on-disk
    cache); benchmarks call this once so steady-state rows never include
    it, and report the returned time separately.
    """
    backend = NumbaBackend(require_compiled=False)
    started = time.perf_counter()
    request = ShiftRequest(
        dbc=np.array([0, 0, 1], dtype=np.int64),
        slot=np.array([1, 3, 2], dtype=np.int64),
        num_dbcs=2,
        domains=8,
        ports=2,
    )
    backend.run(request)
    from repro.engine.faults import FaultModel

    backend.run(ShiftRequest(
        dbc=np.array([0, 0, 1], dtype=np.int64),
        slot=np.array([1, 3, 2], dtype=np.int64),
        num_dbcs=2,
        domains=8,
        ports=2,
        fault=FaultModel(rate=0.5, seed=1),
    ))
    backend.population_nearest(
        np.array([[0, 1, 0]], dtype=np.int64),
        np.array([[1, 2, 3]], dtype=np.int64),
        num_dbcs=2,
        domains=8,
        ports=2,
        warm_start=True,
    )
    return time.perf_counter() - started
