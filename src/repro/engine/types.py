"""Engine request/result types.

A :class:`ShiftRequest` is the fully compiled form of "run these accesses
against this DBC geometry": flat per-access DBC/slot arrays plus the
track geometry, the port-selection policy and (optionally) the shift
state the device is already in. A :class:`ShiftResult` carries the
charged shift counters and the final device state, so stateful callers
(the controller) can chain requests and stateless callers (the analytic
cost model) can ignore it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.faults import FaultModel, FaultObservation
from repro.engine.semantics import PortPolicy
from repro.errors import SimulationError


@dataclass(frozen=True, eq=False)
class ShiftRequest:
    """One batch of accesses against a uniform-geometry set of DBCs.

    Compared by identity: the array fields make the generated
    field-wise ``__eq__``/``__hash__`` raise, so they are disabled.

    Attributes
    ----------
    dbc / slot:
        Per-access DBC index and intra-DBC location, in trace order.
    num_dbcs:
        Device width; per-DBC counters are reported at this length.
    domains:
        Domains per track (``K``); slots must lie in ``[0, domains)``.
    ports:
        Access ports per track.
    policy:
        Port-selection policy.
    warm_start:
        Whether a DBC's very first access aligns for free.
    init_offsets / init_aligned:
        Optional per-DBC starting state (defaults: offset 0, unaligned),
        letting stateful callers chain batches.
    fault:
        Optional :class:`~repro.engine.faults.FaultModel`. A null model
        (effective rate 0) is normalized to ``None`` here, so rate-0
        requests run the exact clean code path.
    access_base:
        Absolute index of this batch's first access in its trace; the
        fault RNG is keyed on ``access_base + i`` so chunked replay
        draws the same faults as monolithic replay.
    init_drifts:
        Optional per-DBC starting physical-minus-believed drift (from a
        previous faulted batch). Only meaningful with ``fault`` set.
    """

    dbc: np.ndarray
    slot: np.ndarray
    num_dbcs: int
    domains: int
    ports: int = 1
    policy: PortPolicy = PortPolicy.NEAREST
    warm_start: bool = True
    init_offsets: np.ndarray | None = None
    init_aligned: np.ndarray | None = None
    fault: FaultModel | None = None
    access_base: int = 0
    init_drifts: np.ndarray | None = None

    def __post_init__(self) -> None:
        dbc = np.ascontiguousarray(self.dbc, dtype=np.int64)
        slot = np.ascontiguousarray(self.slot, dtype=np.int64)
        if dbc.ndim != 1 or slot.ndim != 1 or dbc.size != slot.size:
            raise SimulationError(
                f"dbc/slot must be equal-length 1-D arrays, got shapes "
                f"{dbc.shape} and {slot.shape}"
            )
        if self.num_dbcs < 1:
            raise SimulationError(f"num_dbcs must be >= 1, got {self.num_dbcs}")
        if dbc.size and (int(dbc.min()) < 0 or int(dbc.max()) >= self.num_dbcs):
            raise SimulationError(
                f"dbc indices must lie in [0, {self.num_dbcs})"
            )
        object.__setattr__(self, "dbc", dbc)
        object.__setattr__(self, "slot", slot)
        if self.access_base < 0:
            raise SimulationError(
                f"access_base must be >= 0, got {self.access_base}"
            )
        if self.fault is not None and self.fault.is_null:
            # Zero-cost-when-off: a rate-0 model IS the clean replay.
            object.__setattr__(self, "fault", None)
        if self.fault is None and self.init_drifts is not None:
            drifts = np.asarray(self.init_drifts)
            if drifts.size and np.any(drifts != 0):
                raise SimulationError(
                    "init_drifts requires a fault model: nonzero drift "
                    "cannot evolve without one"
                )
            object.__setattr__(self, "init_drifts", None)

    @property
    def accesses(self) -> int:
        return int(self.dbc.size)

    def resolved_init(self) -> tuple[np.ndarray, np.ndarray]:
        """The starting per-DBC state as validated int64/bool arrays."""
        if self.init_offsets is None:
            offsets = np.zeros(self.num_dbcs, dtype=np.int64)
        else:
            offsets = np.ascontiguousarray(self.init_offsets, dtype=np.int64)
            if offsets.shape != (self.num_dbcs,):
                raise SimulationError(
                    f"init_offsets must have shape ({self.num_dbcs},)"
                )
            if offsets.size and int(np.abs(offsets).max()) > self.domains - 1:
                raise SimulationError(
                    "init_offsets exceed the physical envelope of "
                    f"{self.domains} domains"
                )
        if self.init_aligned is None:
            aligned = np.zeros(self.num_dbcs, dtype=bool)
        else:
            aligned = np.ascontiguousarray(self.init_aligned, dtype=bool)
            if aligned.shape != (self.num_dbcs,):
                raise SimulationError(
                    f"init_aligned must have shape ({self.num_dbcs},)"
                )
        return offsets, aligned

    def resolved_init_drifts(self) -> np.ndarray:
        """The starting per-DBC drift as a validated int64 array."""
        if self.init_drifts is None:
            return np.zeros(self.num_dbcs, dtype=np.int64)
        drifts = np.ascontiguousarray(self.init_drifts, dtype=np.int64)
        if drifts.shape != (self.num_dbcs,):
            raise SimulationError(
                f"init_drifts must have shape ({self.num_dbcs},)"
            )
        return drifts


@dataclass(frozen=True, eq=False)
class ShiftResult:
    """Charged counters and final device state for one request.

    ``faults`` is ``None`` for clean replay and a
    :class:`~repro.engine.faults.FaultObservation` when the request
    carried an active fault model; it participates in equality, so the
    differential oracle pins fault observability bit-identically too.
    """

    accesses: int
    shifts: int
    per_dbc_shifts: tuple[int, ...]
    final_offsets: np.ndarray
    final_aligned: np.ndarray
    faults: FaultObservation | None = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShiftResult):
            return NotImplemented
        return (
            self.accesses == other.accesses
            and self.shifts == other.shifts
            and self.per_dbc_shifts == other.per_dbc_shifts
            and np.array_equal(self.final_offsets, other.final_offsets)
            and np.array_equal(self.final_aligned, other.final_aligned)
            and self.faults == other.faults
        )
