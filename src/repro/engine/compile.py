"""Compilation layer: (trace, placement) → engine arrays, with caching.

The engine consumes flat per-access ``(dbc, slot)`` arrays; this module
produces them from the library's high-level objects and memoizes the
results. Both :class:`~repro.trace.sequence.AccessSequence` and
:class:`~repro.core.placement.Placement` are immutable and hashable, so
``lru_cache`` keys are sound; the arrays are frozen before caching so
sharing them is safe.

Only duck-typed protocols are used (``sequence.codes``,
``placement.as_arrays``) — the engine package never imports the core or
trace packages, keeping the dependency graph acyclic.

:func:`trace_fingerprint` is the content identity used by the matrix
runner's result cache: two traces with equal variables, access codes and
write masks are the same workload wherever they came from.

:class:`SharedTraceArena` extends that identity across processes: the
matrix runner serializes each unique trace's arrays once into a
``multiprocessing.shared_memory`` block, and pool workers attach
read-only zero-copy views keyed by fingerprint instead of receiving a
pickled copy of the whole suite. The arena's *rehydration* path is the
one place this module touches the trace package — via a function-level
import, keeping the module-level dependency graph acyclic.
"""

from __future__ import annotations

import atexit
import hashlib
import logging
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

logger = logging.getLogger(__name__)


@lru_cache(maxsize=1024)
def compile_access_arrays(sequence, placement) -> tuple[np.ndarray, np.ndarray]:
    """Per-access ``(dbc, slot)`` int64 arrays for a sequence under a placement.

    Cached on the (immutable) argument pair, so sweeping many geometries
    or policies over the same compiled cell is free after the first call.
    The returned arrays are read-only; copy before mutating.
    """
    dbc_of, pos_of = placement.as_arrays(sequence)
    codes = sequence.codes
    dbc = np.ascontiguousarray(dbc_of[codes], dtype=np.int64)
    slot = np.ascontiguousarray(pos_of[codes], dtype=np.int64)
    dbc.setflags(write=False)
    slot.setflags(write=False)
    return dbc, slot


@lru_cache(maxsize=2048)
def trace_fingerprint(trace) -> str:
    """Stable content digest of a memory trace (hex SHA-256).

    Depends only on the variable universe, the access codes and the
    write mask — not on object identity or the process — so it can key
    caches that survive re-generation of identical workloads and agree
    across worker processes.

    Traces that carry their own digest — streaming traces expose
    ``content_fingerprint``, computed incrementally during ingestion
    and equal by construction to this function over the materialized
    twin — are trusted rather than materialized, which is what keeps
    store cell keys independent of residency mode.
    """
    fp = getattr(trace, "content_fingerprint", None)
    if fp is not None:
        return fp
    h = hashlib.sha256()
    seq = trace.sequence
    h.update("\x00".join(seq.variables).encode())
    h.update(b"|")
    h.update(np.ascontiguousarray(seq.codes, dtype=np.int64).tobytes())
    h.update(b"|")
    h.update(np.packbits(np.asarray(trace.writes, dtype=bool)).tobytes())
    return h.hexdigest()


def clear_compile_caches() -> None:
    """Drop all memoized compilations (mostly for tests)."""
    compile_access_arrays.cache_clear()
    trace_fingerprint.cache_clear()


# -- zero-copy shared-memory trace arena -------------------------------------

#: Per-trace layout inside the arena block: ``(codes_offset, accesses,
#: writes_offset)``. Codes are int64 laid out first (so every codes
#: array stays 8-byte aligned), the bool write masks follow.
_ArenaEntry = tuple[int, int, int]

#: Per-sequence skeleton: ``(sequence name, variables, fingerprint)``.
_TraceSkeleton = tuple[str, tuple[str, ...], str]

#: Per-program skeleton: ``(program name, domain, trace skeletons)``.
_ProgramSkeleton = tuple[str, str, tuple[_TraceSkeleton, ...]]


def _quiet_close(shm) -> None:
    """Make ``shm.close()`` — including the one ``__del__`` runs — unraisable.

    Rehydrated numpy views routinely outlive the handle object (a worker
    keeps the views, the handle is garbage-collected), and unmapping
    under live views raises ``BufferError`` from the finalizer. The
    mapping is then reclaimed with the process, which is the intended
    outcome anyway — swallow the error instead of spraying unraisable
    warnings.
    """
    original = shm.close

    def close_quietly():
        try:
            original()
        except BufferError:
            pass

    shm.close = close_quietly


@dataclass(frozen=True)
class ArenaSpec:
    """Picklable handle a worker needs to attach to an arena.

    Everything except the (potentially huge) access arrays: the shared
    block's OS name, the fingerprint-keyed layout table and the program
    skeletons (names, domains, variable universes). Workers rebuild the
    full suite from this plus zero-copy views into the block.
    """

    shm_name: str
    entries: dict[str, _ArenaEntry]
    skeletons: tuple[_ProgramSkeleton, ...]


class SharedTraceArena:
    """One shared-memory block holding every unique trace of a suite.

    Lifecycle (crash-safe by construction):

    * the parent :meth:`create`\\ s the arena before starting the pool —
      unique traces (by :func:`trace_fingerprint`) are serialized once;
      an ``atexit`` guard guarantees the segment is unlinked even if the
      process dies without reaching the ``finally`` block;
    * each worker :meth:`attach`\\ es via the picklable :attr:`spec` and
      :meth:`programs` rehydrates the suite as read-only zero-copy
      views — no per-worker copy of the access arrays exists;
    * workers :meth:`close` their mapping (or simply exit); the parent
      calls :meth:`dispose` — close + unlink — on matrix exit.

    A worker that crashes mid-cell leaves only its own mapping behind,
    which the OS reclaims with the process; the segment itself stays
    owned (and unlinked) by the parent.
    """

    def __init__(self, shm, entries, skeletons, owner: bool):
        _quiet_close(shm)
        self._shm = shm
        self._entries = entries
        self._skeletons = skeletons
        self._owner = owner
        self._disposed = False

    # -- parent side ---------------------------------------------------------

    @classmethod
    def create(cls, programs) -> "SharedTraceArena":
        """Serialize ``programs``' unique traces into a fresh shm block."""
        from multiprocessing import shared_memory

        unique: dict[str, object] = {}
        skeletons: list[_ProgramSkeleton] = []
        for program in programs:
            traces: list[_TraceSkeleton] = []
            for trace in program.traces:
                fp = trace_fingerprint(trace)
                unique.setdefault(fp, trace)
                seq = trace.sequence
                traces.append((seq.name, seq.variables, fp))
            skeletons.append((program.name, program.domain, tuple(traces)))
        codes_bytes = sum(8 * len(t) for t in unique.values())
        total = codes_bytes + sum(len(t) for t in unique.values())
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        try:
            entries: dict[str, _ArenaEntry] = {}
            codes_off, writes_off = 0, codes_bytes
            for fp, trace in unique.items():
                n = len(trace)
                codes = np.frombuffer(
                    shm.buf, dtype=np.int64, count=n, offset=codes_off
                )
                codes[:] = trace.sequence.codes
                writes = np.frombuffer(
                    shm.buf, dtype=bool, count=n, offset=writes_off
                )
                writes[:] = trace.writes
                entries[fp] = (codes_off, n, writes_off)
                codes_off += 8 * n
                writes_off += n
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        arena = cls(shm, entries, tuple(skeletons), owner=True)
        atexit.register(arena.dispose)
        return arena

    @property
    def spec(self) -> ArenaSpec:
        return ArenaSpec(self._shm.name, self._entries, self._skeletons)

    # -- worker side ---------------------------------------------------------

    @classmethod
    def attach(cls, spec: ArenaSpec) -> "SharedTraceArena":
        """Map an existing arena read-only (well, copy-on-write view).

        Python's ``resource_tracker`` would otherwise *unlink* the
        segment when the first attaching worker exits (a long-standing
        footgun fixed by ``track=False`` in 3.13). On older versions,
        registration is suppressed for the duration of the open —
        sending an *unregister* message instead would race: forked
        workers share the parent's tracker process, so each worker's
        message would pop the parent's own registration (and the second
        one would KeyError inside the tracker).
        """
        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(name=spec.shm_name, track=False)
        except TypeError:  # Python < 3.13: no track kwarg
            from multiprocessing import resource_tracker

            original = resource_tracker.register

            def _skip_shm(name, rtype):
                if rtype != "shared_memory":
                    original(name, rtype)

            resource_tracker.register = _skip_shm
            try:
                shm = shared_memory.SharedMemory(name=spec.shm_name)
            finally:
                resource_tracker.register = original
        return cls(shm, spec.entries, spec.skeletons, owner=False)

    def programs(self) -> list:
        """Rehydrate the suite: every array a zero-copy view into the block.

        Traces sharing a fingerprint (within or across programs) share
        one view. Function-level trace imports keep the engine package's
        module graph acyclic.
        """
        from repro.trace.generators.offsetstone import BenchmarkProgram
        from repro.trace.sequence import AccessSequence
        from repro.trace.trace import MemoryTrace

        cache: dict[str, MemoryTrace] = {}
        out = []
        for name, domain, trace_skels in self._skeletons:
            traces = []
            for seq_name, variables, fp in trace_skels:
                trace = cache.get(fp)
                if trace is None:
                    codes_off, n, writes_off = self._entries[fp]
                    codes = np.frombuffer(
                        self._shm.buf, dtype=np.int64, count=n,
                        offset=codes_off,
                    )
                    codes.setflags(write=False)
                    writes = np.frombuffer(
                        self._shm.buf, dtype=bool, count=n, offset=writes_off
                    )
                    writes.setflags(write=False)
                    seq = AccessSequence.from_codes(
                        variables, codes, name=seq_name
                    )
                    trace = MemoryTrace(seq, writes)
                    cache[fp] = trace
                traces.append(trace)
            out.append(
                BenchmarkProgram(name=name, domain=domain, traces=tuple(traces))
            )
        return out

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Unmap this process's view of the block (idempotent).

        Rehydrated arrays still referencing the buffer make the unmap
        impossible; the mapping then lives until those arrays are
        garbage-collected (see :func:`_quiet_close`), which is safe —
        ``dispose`` in the parent has already unlinked the name.
        """
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment's name (creator only; idempotent)."""
        if not self._owner or self._disposed:
            return
        self._disposed = True
        atexit.unregister(self.dispose)
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def dispose(self) -> None:
        """Parent-side teardown: close the mapping and unlink the name."""
        self.unlink()
        self.close()


def try_create_arena(programs) -> SharedTraceArena | None:
    """Best-effort :meth:`SharedTraceArena.create`.

    Platforms without (writable) shared memory — some containers mount
    no ``/dev/shm`` — fall back to ``None``, meaning "pickle the
    programs to workers as before"; results are bit-identical either
    way, the arena only changes where the bytes live.

    Streaming traces are deliberately not serialized: their whole point
    is that the access arrays never materialize, and they already travel
    cheaply by pickle (census metadata plus a spill path). A suite
    containing any streamed trace skips the arena entirely.
    """
    for program in programs:
        if any(hasattr(t, "chunks") for t in program.traces):
            logger.info(
                "suite contains streaming traces; skipping the shared-"
                "memory arena (streamed chunks never materialize)"
            )
            return None
    try:
        return SharedTraceArena.create(programs)
    except Exception as exc:
        logger.warning(
            "shared-trace arena unavailable (%s); falling back to pickled "
            "programs", exc,
        )
        return None
