"""Compilation layer: (trace, placement) → engine arrays, with caching.

The engine consumes flat per-access ``(dbc, slot)`` arrays; this module
produces them from the library's high-level objects and memoizes the
results. Both :class:`~repro.trace.sequence.AccessSequence` and
:class:`~repro.core.placement.Placement` are immutable and hashable, so
``lru_cache`` keys are sound; the arrays are frozen before caching so
sharing them is safe.

Only duck-typed protocols are used (``sequence.codes``,
``placement.as_arrays``) — the engine package never imports the core or
trace packages, keeping the dependency graph acyclic.

:func:`trace_fingerprint` is the content identity used by the matrix
runner's result cache: two traces with equal variables, access codes and
write masks are the same workload wherever they came from.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

import numpy as np


@lru_cache(maxsize=1024)
def compile_access_arrays(sequence, placement) -> tuple[np.ndarray, np.ndarray]:
    """Per-access ``(dbc, slot)`` int64 arrays for a sequence under a placement.

    Cached on the (immutable) argument pair, so sweeping many geometries
    or policies over the same compiled cell is free after the first call.
    The returned arrays are read-only; copy before mutating.
    """
    dbc_of, pos_of = placement.as_arrays(sequence)
    codes = sequence.codes
    dbc = np.ascontiguousarray(dbc_of[codes], dtype=np.int64)
    slot = np.ascontiguousarray(pos_of[codes], dtype=np.int64)
    dbc.setflags(write=False)
    slot.setflags(write=False)
    return dbc, slot


@lru_cache(maxsize=2048)
def trace_fingerprint(trace) -> str:
    """Stable content digest of a memory trace (hex SHA-256).

    Depends only on the variable universe, the access codes and the
    write mask — not on object identity or the process — so it can key
    caches that survive re-generation of identical workloads and agree
    across worker processes.
    """
    h = hashlib.sha256()
    seq = trace.sequence
    h.update("\x00".join(seq.variables).encode())
    h.update(b"|")
    h.update(np.ascontiguousarray(seq.codes, dtype=np.int64).tobytes())
    h.update(b"|")
    h.update(np.packbits(np.asarray(trace.writes, dtype=bool)).tobytes())
    return h.hexdigest()


def clear_compile_caches() -> None:
    """Drop all memoized compilations (mostly for tests)."""
    compile_access_arrays.cache_clear()
    trace_fingerprint.cache_clear()
