"""Batched candidate evaluation: score whole placement populations at once.

Search-based placement (GA, random walk, annealing, 2-opt polishing)
evaluates thousands of candidate placements against *one* trace. Scoring
them one at a time through the scalar cost path leaves most of the work
in per-candidate Python overhead; this module scores a ``(K, V)`` matrix
of candidates in a single vectorized pass instead:

* :func:`evaluate_batch` — the population scorer. Candidates are given
  as stacked ``dbc_of``/``pos_of`` arrays indexed by variable code (the
  same encoding :meth:`Placement.as_arrays` produces); the trace is the
  shared ``codes`` array. One gather (``dbc_of[:, codes]``) yields every
  candidate's per-access arrays, and the per-DBC grouping is resolved
  with one row-wise stable argsort — no per-candidate Python.
* :class:`DeltaCost` — the incremental evaluator for neighbor moves.
  Local search mutates a candidate slightly (transpose two variables,
  reorder a segment); recomputing the full trace cost per move is
  O(trace), but under a *fixed partition* the warm-start single-port
  cost is a weighted sum over per-DBC adjacent access pairs, so a move
  only re-prices the pairs touching the moved variables: O(touched).

Both agree exactly — integer arithmetic throughout — with scoring each
candidate through the reference backend, which the equivalence tests
enforce.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from itertools import chain

import numpy as np

from repro.engine.numpy_backend import nearest_costs_flat
from repro.engine.semantics import PortPolicy, port_boundaries, port_positions
from repro.errors import SimulationError

__all__ = ["DeltaCost", "evaluate_batch", "stack_candidate_arrays"]


def stack_candidate_arrays(
    candidates, num_vars: int, code_of=None
) -> tuple[np.ndarray, np.ndarray]:
    """``(K, V)`` DBC/slot matrices from per-DBC lists of variable codes.

    Each candidate is a complete placement as nested lists —
    ``candidate[d]`` holds the variable codes of DBC ``d`` in slot
    order, every code in ``[0, num_vars)`` appearing exactly once.
    ``code_of`` optionally maps list entries to codes during the flatten
    (e.g. a sequence's ``index_of`` when candidates hold variable
    names), avoiding an intermediate converted copy.
    This is the one encoding step between the searchers' list-of-lists
    individuals and :func:`evaluate_batch`. The whole population is
    flattened in one pass and scattered with a constant number of numpy
    calls — per-candidate calls would cost more than the interpreted
    fill they replace on realistic (tens of variables) instances.
    """
    k = len(candidates)
    dbc_of = np.empty((k, num_vars), dtype=np.int64)
    # Poison-filled so an incomplete candidate is caught below instead of
    # scoring leftover heap contents (a duplicate code necessarily leaves
    # another cell unwritten — the element counts match by construction).
    pos_of = np.full((k, num_vars), -1, dtype=np.int64)
    if k == 0:
        return dbc_of, pos_of
    # Per-list bookkeeping over the flattened population: which slot run
    # each element falls in, and that list's DBC index in its candidate.
    # chain/map keep the flattening inside the C iterator protocol — this
    # is the GA's per-generation encoding step, where generator-expression
    # overhead was most of the stacking cost.
    lists_per = np.fromiter(map(len, candidates), dtype=np.int64, count=k)
    num_lists = int(lists_per.sum())
    flat_lists = chain.from_iterable(candidates)
    sizes = np.fromiter(map(len, flat_lists), dtype=np.int64, count=num_lists)
    flat = chain.from_iterable(chain.from_iterable(candidates))
    if code_of is not None:
        flat = map(code_of, flat)
    codes = np.fromiter(flat, dtype=np.int64, count=k * num_vars)
    list_index = np.arange(num_lists, dtype=np.int64)
    candidate_start = np.repeat(np.cumsum(lists_per) - lists_per, lists_per)
    dbc_vals = np.repeat(list_index - candidate_start, sizes)
    element_index = np.arange(k * num_vars, dtype=np.int64)
    pos_vals = element_index - np.repeat(np.cumsum(sizes) - sizes, sizes)
    # Every candidate contributes exactly num_vars elements, so the flat
    # scatter target is row * num_vars + code.
    target = element_index // num_vars * num_vars + codes
    dbc_of.ravel()[target] = dbc_vals
    pos_of.ravel()[target] = pos_vals
    if int(pos_of.min()) < 0:
        bad = int(np.argmin(pos_of.min(axis=1)))
        raise SimulationError(
            f"candidate {bad} is not a complete placement of "
            f"{num_vars} variables (a code is missing or duplicated)"
        )
    return dbc_of, pos_of


def _as_candidate_matrix(arr, name: str) -> np.ndarray:
    out = np.ascontiguousarray(arr, dtype=np.int64)
    if out.ndim == 1:
        out = out[None, :]
    if out.ndim != 2:
        raise SimulationError(f"{name} must be a (K, V) matrix, got shape {out.shape}")
    return out


#: Row-chunk bound keeping the flattened ``row * num_dbcs + dbc`` sort key
#: within uint16, where numpy's stable sort is a radix sort — the same
#: narrow-key trick as the 1-D kernel, applied to the whole population.
_FLAT_KEY_LIMIT = 0xFFFF + 1

#: Element budget per flattened sort chunk (cache-resident working set).
_FLAT_CHUNK_ELEMENTS = 32768

#: Trace length above which the population is scored row by row instead
#: of through the flattened sort. Short traces are dominated by numpy's
#: per-call setup, which the flat pass pays once for the whole
#: population; long traces are dominated by the sort itself, where the
#: per-row radix sorts stay cache-resident and the flat sort does not.
_FLAT_MAX_ACCESSES = 512


def _sorted_chunks(dbc: np.ndarray, slot: np.ndarray, num_dbcs: int):
    """Yield ``(start, rows, sorted_slots, first_idx)`` per row chunk.

    The shared flattening step of both population kernels: stable-sort
    each chunk by ``row * num_dbcs + dbc`` so every (candidate, DBC)
    subsequence is one contiguous run in trace order — row ``r`` of a
    chunk occupies the sorted range ``[r*n, (r+1)*n)``. Chunks bound
    both the key width (radix range) and the element count (the radix
    sort's bucket scatter degrades sharply once its working set falls
    out of cache). Group boundaries come from key counts, not from
    comparing gathered keys: runs start at the exclusive prefix sums of
    the key histogram.
    """
    k, n = dbc.shape
    rows_per_chunk = max(
        1, min(_FLAT_KEY_LIMIT // num_dbcs, _FLAT_CHUNK_ELEMENTS // n)
    )
    for start in range(0, k, rows_per_chunk):
        cd = dbc[start : start + rows_per_chunk]
        cs = slot[start : start + rows_per_chunk]
        rows = cd.shape[0]
        key = (
            np.arange(rows, dtype=np.int64)[:, None] * num_dbcs + cd
        ).ravel()
        key = key.astype(np.uint16) if rows * num_dbcs <= 0xFFFF + 1 else key
        order = np.argsort(key, kind="stable")
        ss = cs.ravel()[order]
        counts = np.bincount(key, minlength=rows * num_dbcs)
        first_idx = (np.cumsum(counts) - counts)[counts > 0]
        yield start, rows, ss, first_idx


def evaluate_batch(
    codes: np.ndarray,
    dbc_of: np.ndarray,
    pos_of: np.ndarray,
    *,
    num_dbcs: int,
    domains: int | None = None,
    ports: int = 1,
    policy: PortPolicy = PortPolicy.NEAREST,
    warm_start: bool = True,
    backend: object = None,
) -> np.ndarray:
    """Shift cost of ``K`` candidate placements against one compiled trace.

    ``codes`` is the trace's per-access variable-code array (shape
    ``(N,)``); ``dbc_of``/``pos_of`` are ``(K, V)`` matrices giving each
    candidate's DBC index and intra-DBC slot per variable code (a single
    ``(V,)`` candidate is promoted to ``K=1``). Returns the ``(K,)``
    int64 per-candidate totals, identical to running each candidate
    through an engine backend with default (cold, offset-0) initial
    state.

    All paths are fully vectorized over the whole population. Single
    port and STATIC flatten into one masked-``diff`` pass; nearest-port
    multi-port flattens the candidate matrix into one long run-sorted
    array and resolves every row's port-choice recurrences with a single
    2-D monoid scan (see :func:`_batch_nearest`).

    ``backend`` opts the nearest-port branch into a backend's *compiled
    population kernel* when the selected backend provides one (the
    ``numba`` backend's fused per-row loop). ``None`` consults the
    ambient ``REPRO_BACKEND`` selection — including ``auto`` — so
    searchers inherit the compiled scorer with zero changes; backends
    without the hook (numpy, reference) keep the vectorized paths here,
    bit-identically.
    """
    codes = np.ascontiguousarray(codes, dtype=np.int64)
    if codes.ndim != 1:
        raise SimulationError(f"codes must be 1-D, got shape {codes.shape}")
    dbc_of = _as_candidate_matrix(dbc_of, "dbc_of")
    pos_of = _as_candidate_matrix(pos_of, "pos_of")
    if dbc_of.shape != pos_of.shape:
        raise SimulationError(
            f"dbc_of/pos_of shapes differ: {dbc_of.shape} vs {pos_of.shape}"
        )
    if num_dbcs < 1:
        raise SimulationError(f"num_dbcs must be >= 1, got {num_dbcs}")
    k = dbc_of.shape[0]
    if k == 0 or codes.size == 0:
        return np.zeros(k, dtype=np.int64)
    if codes.min() < 0 or codes.max() >= dbc_of.shape[1]:
        raise SimulationError(
            f"codes must lie in [0, {dbc_of.shape[1]}) to index the candidates"
        )
    dbc = dbc_of[:, codes]
    slot = pos_of[:, codes]
    # Range checks run against the small (K, V) matrices first — a
    # trace-length factor fewer passes than checking the gathered
    # arrays. The contract only constrains entries the trace actually
    # gathers (placeholder values on never-accessed variables are
    # legal), so a matrix-level violation falls back to the gathered
    # arrays before raising.
    if (int(dbc_of.min()) < 0 or int(dbc_of.max()) >= num_dbcs) and (
        int(dbc.min()) < 0 or int(dbc.max()) >= num_dbcs
    ):
        raise SimulationError(f"dbc indices must lie in [0, {num_dbcs})")
    lo, hi = int(pos_of.min()), int(pos_of.max())
    if domains is None:
        if ports > 1:
            raise SimulationError(
                "multi-port batch evaluation needs the track length (domains)"
            )
        if not warm_start:
            # The cold-start charge anchors on the track's port position;
            # inferring the track from the population's max slot would make
            # one candidate's cost depend on its batchmates.
            raise SimulationError(
                "cold-start batch evaluation needs the track length (domains)"
            )
        domains = hi + 1
    if lo < 0 or hi >= domains:
        # Same fallback as the DBC check: only gathered slots must fit.
        lo, hi = int(slot.min()), int(slot.max())
        if lo < 0 or hi >= domains:
            bad = lo if lo < 0 else hi
            raise SimulationError(
                f"location {bad} outside track of {domains} domains"
            )
    if ports == 1 or policy is PortPolicy.STATIC:
        # The anchored path is already a single masked diff — a compiled
        # alternative has nothing left to fuse, so it never delegates.
        return _batch_anchored(dbc, slot, num_dbcs, domains, ports, warm_start)
    population = _population_scorer(backend)
    if population is not None:
        return population(
            dbc, slot, num_dbcs=num_dbcs, domains=domains, ports=ports,
            warm_start=warm_start,
        )
    return _batch_nearest(dbc, slot, num_dbcs, domains, ports, warm_start)


def _population_scorer(backend: object):
    """The selected backend's population kernel, if it offers one.

    ``backend=None`` resolves the ambient ``REPRO_BACKEND`` selection
    (``auto`` included) — an unset/empty variable short-circuits to the
    default vectorized paths without touching the registry. Backends
    exposing a callable ``population_nearest`` (the numba backend)
    return that hook; everything else returns ``None`` and the caller
    keeps the flattened-sort scan.
    """
    if backend is None:
        backend = os.environ.get("REPRO_BACKEND")
        if not backend:
            return None
    from repro.engine import get_backend

    hook = getattr(get_backend(backend), "population_nearest", None)
    return hook if callable(hook) else None


def _batch_anchored(
    dbc: np.ndarray,
    slot: np.ndarray,
    num_dbcs: int,
    domains: int,
    ports: int,
    warm_start: bool,
) -> np.ndarray:
    """Single-port / STATIC costs for all rows in one flattened pass.

    The whole population is sorted at once: flattening row-major and
    stable-sorting by ``row * num_dbcs + dbc`` groups every (candidate,
    DBC) subsequence contiguously while preserving trace order, so the
    per-candidate costs are one masked ``diff`` plus a segmented sum —
    1-D kernels throughout, which numpy executes far faster than their
    ``axis=1`` counterparts. Rows are chunked to keep the combined key
    within radix-sort range.
    """
    k, n = dbc.shape
    totals = np.empty(k, dtype=np.int64)
    if n == 0:
        totals[:] = 0
        return totals
    anchor = port_positions(domains, ports)[0]
    if n > _FLAT_MAX_ACCESSES:
        key = dbc.astype(np.uint16) if num_dbcs <= 0xFFFF + 1 else dbc
        for i in range(k):
            order = np.argsort(key[i], kind="stable")
            ds = key[i][order]
            ss = slot[i][order]
            same = ds[1:] == ds[:-1]
            total = int(np.abs(np.diff(ss))[same].sum())
            if not warm_start:
                first = np.empty(n, dtype=bool)
                first[0] = True
                np.logical_not(same, out=first[1:])
                total += int(np.abs(ss[first] - anchor).sum())
            totals[i] = total
        return totals
    for start, rows, ss, first_idx in _sorted_chunks(dbc, slot, num_dbcs):
        move = np.diff(ss)
        np.abs(move, out=move)
        move[first_idx[1:] - 1] = 0  # run crossings
        if n == 1:
            chunk_totals = np.zeros(rows, dtype=np.int64)
        else:
            # Row r occupies the sorted range [r*n, (r+1)*n); its last
            # pair slot is a masked-out row crossing, so plain n-strided
            # segments sum exactly the intra-row moves.
            chunk_totals = np.add.reduceat(
                move, np.arange(0, rows * n - 1, n)
            )
        if not warm_start:
            # Cold start charges each DBC's first access its alignment
            # distance from port 0 (default offset-0 initial state).
            np.add.at(
                chunk_totals, first_idx // n, np.abs(ss[first_idx] - anchor)
            )
        totals[start : start + rows] = chunk_totals
    return totals


def _batch_nearest(
    dbc: np.ndarray,
    slot: np.ndarray,
    num_dbcs: int,
    domains: int,
    ports: int,
    warm_start: bool,
) -> np.ndarray:
    """Nearest-port costs for all rows through one 2-D monoid scan.

    The same flattening trick as :func:`_batch_anchored`, applied to the
    sequential port-choice recurrence: stable-sorting the population by
    ``row * num_dbcs + dbc`` makes every (candidate, DBC) subsequence a
    contiguous run, and since each run's first access carries a
    *constant* port map, one monoid scan over the whole flattened
    population resolves every row's recurrence at once — candidates
    cannot leak port state into each other, exactly as DBC runs cannot
    in the 1-D kernel. Chunking keeps the sort key within radix range
    and the scan's intermediates (the per-access transition maps and
    in-block prefixes) cache-resident; past the chunk budget the loop
    degrades gracefully to a few rows — eventually one — per pass, which
    still beats per-row engine calls (no per-request validation, no
    per-row result objects). This retired the old ``_batch_per_row``
    fallback entirely. Port widths beyond the packed-table bound
    (``p**p > 256``) inherit the constant-collapse scan
    (:func:`~repro.engine.numpy_backend._scan_collapse`) through
    :func:`~repro.engine.numpy_backend.nearest_costs_flat`, so K=200
    population scoring at 8 ports runs the same collapsed state chase
    as replay.
    """
    k, n = dbc.shape
    totals = np.empty(k, dtype=np.int64)
    for start, rows, ss, first_idx in _sorted_chunks(dbc, slot, num_dbcs):
        # Default initial state (offset 0, cold): the first target is the
        # slot itself; warm start zeroes the first charge afterwards.
        costs, _chosen = nearest_costs_flat(
            ss, first_idx, ss[first_idx], domains, ports
        )
        if warm_start:
            costs[first_idx] = 0
        totals[start : start + rows] = np.add.reduceat(
            costs, np.arange(0, rows * n, n)
        )
    return totals


class DeltaCost:
    """Incremental warm-start cost of neighbor moves under a fixed partition.

    *Single port* (and STATIC, its cost-equivalent): compiles the trace
    once into the per-DBC adjacency structure — the warm cost of a
    placement is ``sum(w_ab * |pos[a] - pos[b]|)`` over the pairs ``(a,
    b)`` of variables adjacent in some DBC's access subsequence, with
    ``w_ab`` the number of times they are adjacent. Because the pair
    structure depends only on the *partition* (which DBC each variable
    lives in), any intra-DBC reordering can be re-priced by touching
    just the pairs incident to the moved variables — O(touched accesses)
    instead of O(trace) per move.

    *Multi-port nearest* (``ports > 1``, requires ``domains``): port
    choices carry sequential state, so the cost is not a pair sum — but
    DBCs are still independent. The trace is compiled once into per-DBC
    access subsequences, and a move re-replays exactly the touched DBCs
    (exact per-DBC recomposition): O(accesses of touched DBCs) per move,
    against O(trace) for a full rescore. The replay is the same
    boundary-bisect arithmetic as the vectorized kernel, in pure Python
    — touched subsequences are short and interpreter arithmetic beats
    numpy's per-call setup at that size.

    ``delta`` prices a move without committing it; ``apply`` commits.
    Moves keep every variable's DBC by construction (only slots are
    assigned). :meth:`resync` recomputes the total from scratch (the
    arithmetic is exact integers, so this is a verification hook, not a
    drift correction). Both modes agree exactly with the reference
    backend's warm-start totals.
    """

    def __init__(
        self,
        codes: np.ndarray,
        dbc_of: np.ndarray,
        pos_of: np.ndarray,
        *,
        domains: int | None = None,
        ports: int = 1,
        policy: PortPolicy = PortPolicy.NEAREST,
    ) -> None:
        codes = np.ascontiguousarray(codes, dtype=np.int64)
        dbc_of = np.ascontiguousarray(dbc_of, dtype=np.int64)
        pos_of = np.ascontiguousarray(pos_of, dtype=np.int64)
        if codes.ndim != 1 or dbc_of.ndim != 1 or pos_of.ndim != 1:
            raise SimulationError("codes/dbc_of/pos_of must be 1-D arrays")
        if dbc_of.shape != pos_of.shape:
            raise SimulationError("dbc_of/pos_of must have equal length")
        self._num_vars = int(dbc_of.size)
        self._pos: list[int] = pos_of.tolist()
        self._replay = ports > 1 and policy is not PortPolicy.STATIC
        if self._replay:
            if domains is None:
                raise SimulationError(
                    "multi-port delta pricing needs the track length (domains)"
                )
            self._positions = port_positions(domains, ports)
            self._bounds = port_boundaries(domains, ports)
            self._dbc: list[int] = dbc_of.tolist()
            #: DBC index -> its access subsequence (codes, trace order).
            self._dbc_codes: dict[int, list[int]] = {}
            for c in codes.tolist():
                self._dbc_codes.setdefault(self._dbc[c], []).append(c)
            self._dbc_cost: dict[int, int] = {}
            self._total = self.resync()
            return
        a, b, w = self._compile_pairs(codes, dbc_of)
        self._a, self._b, self._w = a, b, w
        #: code -> [(neighbour code, adjacency weight)]
        self._adj: list[list[tuple[int, int]]] = [
            [] for _ in range(self._num_vars)
        ]
        for pa, pb, pw in zip(a.tolist(), b.tolist(), w.tolist()):
            self._adj[pa].append((pb, pw))
            self._adj[pb].append((pa, pw))
        self._total = self.resync()

    @staticmethod
    def _compile_pairs(
        codes: np.ndarray, dbc_of: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Weighted per-DBC adjacency pairs of the compiled trace."""
        num_vars = dbc_of.size
        if codes.size <= 1:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        dbc = dbc_of[codes]
        narrow = 0 <= int(dbc.min()) and int(dbc.max()) <= 0xFFFF
        key = dbc.astype(np.uint16) if narrow else dbc
        order = np.argsort(key, kind="stable")
        ds = dbc[order]
        cs = codes[order]
        same = ds[1:] == ds[:-1]
        pa, pb = cs[:-1][same], cs[1:][same]
        distinct = pa != pb  # same-variable pairs cost 0 under any order
        pa, pb = pa[distinct], pb[distinct]
        lo = np.minimum(pa, pb)
        hi = np.maximum(pa, pb)
        pair_key, w = np.unique(lo * num_vars + hi, return_counts=True)
        return pair_key // num_vars, pair_key % num_vars, w.astype(np.int64)

    # -- multi-port replay ---------------------------------------------------

    def _replay_dbc(self, dbc_index: int) -> int:
        """Warm-start nearest-port cost of one DBC at the current slots.

        The scalar twin of the vectorized kernel: track the offset, pick
        the nearest port by bisecting the decision boundaries, charge
        the remaining distance. The first access aligns for free.
        """
        codes_d = self._dbc_codes.get(dbc_index)
        if not codes_d:
            return 0
        pos = self._pos
        positions = self._positions
        bounds = self._bounds
        slot = pos[codes_d[0]]
        base = slot - positions[bisect_left(bounds, slot)]
        total = 0
        for c in codes_d[1:]:
            target = pos[c] - base
            j = bisect_left(bounds, target)
            total += abs(target - positions[j])
            base = pos[c] - positions[j]
        return total

    def _replay_delta(self, moves: dict[int, int]) -> int:
        """Price ``moves`` by re-replaying exactly the touched DBCs."""
        affected = {self._dbc[c] for c in moves}
        pos = self._pos
        saved = [(c, pos[c]) for c in moves]
        for c, new_slot in moves.items():
            pos[c] = new_slot
        try:
            priced = sum(
                self._replay_dbc(d) - self._dbc_cost.get(d, 0)
                for d in affected
            )
        finally:
            for c, old_slot in saved:
                pos[c] = old_slot
        return priced

    def _replay_commit(self, moves: dict[int, int]) -> int:
        for c, new_slot in moves.items():
            self._pos[c] = new_slot
        for d in {self._dbc[c] for c in moves}:
            fresh = self._replay_dbc(d)
            self._total += fresh - self._dbc_cost.get(d, 0)
            self._dbc_cost[d] = fresh
        return self._total

    # -- pricing ------------------------------------------------------------

    @property
    def cost(self) -> int:
        """The current candidate's total shift cost."""
        return self._total

    def position_of(self, code: int) -> int:
        return int(self._pos[code])

    def delta(self, moves: dict[int, int]) -> int:
        """Cost change of assigning ``{code: new_slot}`` without committing.

        All moved variables keep their DBC (the compiled structure is
        partition-specific); swapping or permuting slots within DBCs is
        exactly that.
        """
        if self._replay:
            return self._replay_delta(moves)
        pos = self._pos
        d = 0
        for c, new_c in moves.items():
            old_c = pos[c]
            for o, w in self._adj[c]:
                if o in moves:
                    if o < c:  # both moved: price the pair once
                        continue
                    d += w * (abs(new_c - moves[o]) - abs(old_c - pos[o]))
                else:
                    po = pos[o]
                    d += w * (abs(new_c - po) - abs(old_c - po))
        return d

    def apply(self, moves: dict[int, int], delta: int | None = None) -> int:
        """Commit ``{code: new_slot}`` and return the new total.

        Pass the ``delta`` already obtained from :meth:`delta` for the
        same moves to commit without re-pricing (accept loops price
        first, then commit). The multi-port mode re-replays the touched
        DBCs either way — its per-DBC totals must stay current — so the
        passed delta only skips work on the single-port path; results
        are identical.
        """
        if self._replay:
            return self._replay_commit(moves)
        self._total += self.delta(moves) if delta is None else delta
        for c, new_c in moves.items():
            self._pos[c] = new_c
        return self._total

    def swap_delta(self, code_a: int, code_b: int) -> int:
        """Price transposing two variables' slots (the annealing move)."""
        pos = self._pos
        if self._replay:
            return self._replay_delta(
                {code_a: pos[code_b], code_b: pos[code_a]}
            )
        pa, pb = pos[code_a], pos[code_b]
        d = 0
        for o, w in self._adj[code_a]:
            if o != code_b:  # the (a, b) pair's own distance is unchanged
                po = pos[o]
                d += w * (abs(pb - po) - abs(pa - po))
        for o, w in self._adj[code_b]:
            if o != code_a:
                po = pos[o]
                d += w * (abs(pa - po) - abs(pb - po))
        return d

    def swap(self, code_a: int, code_b: int, delta: int | None = None) -> int:
        """Commit the transposition and return the new total.

        ``delta`` takes a price already computed by :meth:`swap_delta`
        for the same pair, skipping the second pricing pass (single-port
        path only; see :meth:`apply`).
        """
        pos = self._pos
        if self._replay:
            return self._replay_commit(
                {code_a: pos[code_b], code_b: pos[code_a]}
            )
        self._total += self.swap_delta(code_a, code_b) if delta is None else delta
        pos[code_a], pos[code_b] = pos[code_b], pos[code_a]
        return self._total

    def resync(self) -> int:
        """Recompute the total from scratch (verification hook)."""
        if self._replay:
            self._dbc_cost = {
                d: self._replay_dbc(d) for d in self._dbc_codes
            }
            self._total = sum(self._dbc_cost.values())
            return self._total
        pos = np.asarray(self._pos, dtype=np.int64)
        self._total = int((self._w * np.abs(pos[self._a] - pos[self._b])).sum())
        return self._total
