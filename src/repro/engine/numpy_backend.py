"""Batched NumPy backend: whole-trace shift computation, no per-access loop.

Accesses are stably sorted by DBC so every DBC's subsequence is a
contiguous run that still preserves trace order (DBCs shift
independently, so reordering across DBCs cannot change any cost).

*Single port* (and the STATIC policy, which is single-port-equivalent):
the track offset after serving slot ``s`` is always ``s - anchor``, so
consecutive costs are plain ``|diff|`` of slots within each run — an
argsort plus a masked ``diff`` and one ``bincount``.

*Multi-port nearest*: the only state the nearest-port controller carries
between accesses of a DBC is *which port served the previous access*
(the offset is then determined by the previous slot). Each access is
therefore a function ``prev_port -> (chosen port, cost)`` over a tiny
domain of ``p`` ports. We materialize those per-access port maps in bulk
(one ``searchsorted`` against the cached nearest-port decision
boundaries) and resolve the sequential dependency with a monoid prefix
composition over the maps: Hillis–Steele doubling for short inputs, and
a *blocked* scan for long ones. Narrow alphabets (``p**p <= 256``) pack
each map into one base-``p`` integer composed through a cached monoid
table; wider ports use the *constant-collapse* representation — each map
is ``(kind, value)``, constant or an explicit row — exploiting that any
composition ending in a constant *is* that constant, so prefix states
collapse to scalar values at the first constant map and stay scalar
(see :func:`_scan_collapse`). A run's first access is a *constant* map
(its choice is fixed by the known starting offset), so composed prefixes
spanning it are constant maps too and runs cannot leak state into each
other.

*Cold start* needs no simulation at all: warm and cold controllers make
identical port choices, so cold cost is the warm cost plus the first
alignment distance of each DBC — handled analytically by simply not
zeroing the first access's charge.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.engine.faults import empty_observation, observe_faults_sorted
from repro.engine.semantics import PortPolicy, port_boundaries, port_positions
from repro.engine.types import ShiftRequest, ShiftResult
from repro.errors import SimulationError


def _group_order(dbc: np.ndarray, num_dbcs: int) -> np.ndarray:
    """Stable argsort by DBC index.

    DBC counts are tiny, so sorting narrow keys lets numpy's radix sort
    touch far fewer bytes than a general int64 sort — worth ~3x on the
    single-port path, where the sort dominates.
    """
    key = dbc.astype(np.uint16) if num_dbcs <= 0xFFFF else dbc
    return np.argsort(key, kind="stable")


@lru_cache(maxsize=256)
def positions_array(domains: int, ports: int) -> np.ndarray:
    """Cached read-only port-position array for one track geometry.

    Matrix sweeps revisit the same few ``(domains, ports)`` cells
    thousands of times; caching the arrays (and the boundary tables
    below) keeps sharded/parallel runs from rebuilding them per cell.
    """
    out = np.asarray(port_positions(domains, ports), dtype=np.int64)
    out.setflags(write=False)
    return out


@lru_cache(maxsize=256)
def boundaries_array(domains: int, ports: int) -> np.ndarray:
    """Cached read-only nearest-port decision thresholds (see semantics)."""
    out = np.asarray(port_boundaries(domains, ports), dtype=np.int64)
    out.setflags(write=False)
    return out


def single_port_warm_total(dbc: np.ndarray, slot: np.ndarray) -> int:
    """Total warm-start single-port shifts for per-access dbc/slot arrays.

    The minimal kernel behind the analytic cost model's fast path (the
    GA's fitness loop): sum of intra-DBC consecutive slot distances.
    """
    if dbc.size <= 1:
        return 0
    order = _group_order(dbc, int(dbc.max()) + 1)
    ds = dbc[order]
    ss = slot[order]
    same = ds[1:] == ds[:-1]
    return int(np.abs(np.diff(ss))[same].sum())


class NumpyBackend:
    """Executes requests with vectorized segment operations."""

    name = "numpy"

    def run(self, request: ShiftRequest) -> ShiftResult:
        init_offsets, init_aligned = request.resolved_init()
        n = request.accesses
        if n == 0:
            return ShiftResult(
                accesses=0,
                shifts=0,
                per_dbc_shifts=(0,) * request.num_dbcs,
                final_offsets=init_offsets.copy(),
                final_aligned=init_aligned.copy(),
                faults=(
                    empty_observation(request.resolved_init_drifts())
                    if request.fault is not None else None
                ),
            )
        slot = request.slot
        lo, hi = int(slot.min()), int(slot.max())
        if lo < 0 or hi >= request.domains:
            bad = lo if lo < 0 else hi
            raise SimulationError(
                f"location {bad} outside track of {request.domains} domains"
            )
        positions = positions_array(request.domains, request.ports)
        order = _group_order(request.dbc, request.num_dbcs)
        ds = request.dbc[order]
        ss = slot[order]
        run_first = np.empty(n, dtype=bool)
        run_first[0] = True
        np.not_equal(ds[1:], ds[:-1], out=run_first[1:])
        first_idx = np.flatnonzero(run_first)       # one per accessed DBC
        first_dbc = ds[first_idx]                   # unique, ascending
        last_idx = np.append(first_idx[1:] - 1, n - 1)
        if request.ports == 1 or request.policy is PortPolicy.STATIC:
            costs, last_port = _anchored_costs(
                ss, first_idx, first_dbc, positions, init_offsets
            )
        else:
            costs, chosen = nearest_costs_flat(
                ss, first_idx,
                ss[first_idx] - init_offsets[first_dbc],
                request.domains, request.ports,
            )
            last_port = chosen[last_idx]
        if request.warm_start:
            costs[first_idx[~init_aligned[first_dbc]]] = 0
        faults = None
        if request.fault is not None:
            # Faults never feed back into the believed dynamics, so the
            # clean scan above stays untouched; the fault pass only
            # needs the *signed* per-access deltas it implies.
            single = request.ports == 1 or request.policy is PortPolicy.STATIC
            delta = np.empty(n, dtype=np.int64)
            if single:
                delta[1:] = np.diff(ss)
                delta[first_idx] = (
                    ss[first_idx] - positions[0] - init_offsets[first_dbc]
                )
                offset_after = ss - positions[0]
            else:
                gap = np.empty(n, dtype=np.int64)
                gap[0] = 0
                np.subtract(ss[1:], ss[:-1], out=gap[1:])
                prev = np.empty(n, dtype=np.intp)
                prev[0] = 0
                prev[1:] = chosen[:-1]
                delta = gap + positions[prev] - positions[chosen]
                delta[first_idx] = (
                    ss[first_idx] - init_offsets[first_dbc]
                ) - positions[chosen[first_idx]]
                offset_after = ss - positions[chosen]
            if request.warm_start:
                # Free first alignment issues no physical shifts.
                delta[first_idx[~init_aligned[first_dbc]]] = 0
            faults = observe_faults_sorted(
                request.fault,
                dbc=request.dbc,
                order=order,
                delta=delta,
                offset_after=offset_after,
                run_first=run_first,
                first_idx=first_idx,
                first_dbc=first_dbc,
                last_idx=last_idx,
                domains=request.domains,
                access_base=request.access_base,
                init_drifts=request.resolved_init_drifts(),
            )
        per_dbc = np.zeros(request.num_dbcs, dtype=np.int64)
        np.add.at(per_dbc, ds, costs)
        final_offsets = init_offsets.copy()
        final_aligned = init_aligned.copy()
        final_offsets[first_dbc] = ss[last_idx] - positions[last_port]
        final_aligned[first_dbc] = True
        return ShiftResult(
            accesses=n,
            shifts=int(per_dbc.sum()),
            per_dbc_shifts=tuple(int(c) for c in per_dbc),
            final_offsets=final_offsets,
            final_aligned=final_aligned,
            faults=faults,
        )


def _anchored_costs(
    ss: np.ndarray,
    first_idx: np.ndarray,
    first_dbc: np.ndarray,
    positions: np.ndarray,
    init_offsets: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Costs when every access uses port 0 (single port or STATIC)."""
    anchor = positions[0]
    costs = np.empty(ss.size, dtype=np.int64)
    costs[1:] = np.abs(np.diff(ss))
    costs[first_idx] = np.abs(ss[first_idx] - anchor - init_offsets[first_dbc])
    return costs, np.zeros(first_dbc.size, dtype=np.int64)


@lru_cache(maxsize=256)
def _transition_tables(domains: int, ports: int) -> np.ndarray:
    """Per-gap *packed* port-transition maps for one track geometry.

    The map an access applies depends only on its slot gap ``g`` to the
    previous access: entering with port ``k``, the target is ``g +
    positions[k]`` and the chosen port is the nearest one. All ``2K - 1``
    possible gaps are enumerated once; building the per-access maps is
    then a single gather at ``gap + (K - 1)``. Only ports that fit the
    packed encoding (``p**p <= _TABLE_MAX``) use this table — one
    base-``p`` integer per gap; wider ports go through
    :func:`_gap_maps`.
    """
    positions = positions_array(domains, ports)
    boundaries = boundaries_array(domains, ports)
    gaps = np.arange(-(domains - 1), domains, dtype=np.int64)
    rows = np.searchsorted(
        boundaries, gaps[:, None] + positions[None, :], side="left"
    )
    out = rows @ (ports ** np.arange(ports, dtype=np.int64))
    out.setflags(write=False)
    return out


def _map_dtype(ports: int) -> type:
    """Narrowest signed dtype holding port indices plus the -1 sentinel."""
    return np.int8 if ports <= 127 else np.int16


@lru_cache(maxsize=256)
def _gap_maps(domains: int, ports: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-gap ``(rows, const)`` transition maps for wide-port geometries.

    The constant-collapse representation: ``rows[g]`` is the explicit
    ``prev -> next`` map of gap ``g`` and ``const[g]`` its value when the
    map is *constant* (same chosen port whatever the previous one was),
    ``-1`` otherwise. Nearest-port maps are monotone (the targets ``g +
    positions[k]`` increase with ``k``), so a map is constant exactly
    when its first and last entries agree. Narrow dtypes keep the
    per-access gathers' memory traffic at one byte per entry.
    """
    positions = positions_array(domains, ports)
    boundaries = boundaries_array(domains, ports)
    dtype = _map_dtype(ports)
    gaps = np.arange(-(domains - 1), domains, dtype=np.int64)
    rows = np.searchsorted(
        boundaries, gaps[:, None] + positions[None, :], side="left"
    ).astype(dtype)
    const = np.where(rows[:, 0] == rows[:, -1], rows[:, 0], -1).astype(dtype)
    rows.setflags(write=False)
    const.setflags(write=False)
    return rows, const


def nearest_costs_flat(
    ss: np.ndarray,
    first_idx: np.ndarray,
    first_targets: np.ndarray,
    domains: int,
    ports: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-access nearest-port costs and chosen ports over run-sorted slots.

    ``ss`` holds the slots with every run (one DBC's subsequence, or one
    batch row's DBC subsequence) contiguous and in trace order;
    ``first_idx`` marks each run's first access — index 0 must be one —
    and ``first_targets`` gives its port-selection target (``slot -
    starting offset``). Shared by the 1-D backend and the population
    kernel in :mod:`repro.engine.batch`, which flattens a whole ``(K,
    N)`` candidate matrix into one such array.

    The port chosen for an access depends only on the previous access's
    port, so each access is a ``prev -> next`` map over the ``p`` ports,
    gathered per access from the cached per-gap transition tables.
    Run-first rows are overwritten with constant maps (their choice is
    fixed by the known starting offset), the scan composes the maps into
    per-access choices, and the costs need only the chosen ports:
    ``|gap + positions[prev] - positions[chosen]|``.
    """
    n = ss.size
    positions = positions_array(domains, ports)
    boundaries = boundaries_array(domains, ports)
    gap = np.empty(n, dtype=np.int64)
    gap[0] = 0
    np.subtract(ss[1:], ss[:-1], out=gap[1:])
    # The per-gap tables pay off when the trace revisits gaps (realistic
    # geometries: K in the hundreds, traces far longer). A huge track
    # with a short trace would build — and cache — an O(K) table for a
    # handful of accesses, so fall back to resolving just the trace's
    # own gaps there.
    use_table = 2 * domains - 1 <= max(4 * n, _TABLE_SPAN_FLOOR)
    first_port = np.searchsorted(boundaries, first_targets, side="left")
    if ports ** ports <= _TABLE_MAX:
        if use_table:
            enc = _transition_tables(domains, ports)[gap + (domains - 1)]
        else:
            enc = np.searchsorted(
                boundaries, gap[:, None] + positions[None, :], side="left"
            ) @ (ports ** np.arange(ports, dtype=np.int64))
        # A constant map to port j has every base-p digit equal to j.
        enc[first_idx] = first_port * ((ports ** ports - 1) // (ports - 1))
        chosen = _scan_packed(enc, ports)
    else:
        if use_table:
            g_rows, g_const = _gap_maps(domains, ports)
            at = gap + (domains - 1)
            rows = g_rows[at]
            const = g_const[at]
        else:
            dtype = _map_dtype(ports)
            rows = np.searchsorted(
                boundaries, gap[:, None] + positions[None, :], side="left"
            ).astype(dtype)
            const = np.where(
                rows[:, 0] == rows[:, -1], rows[:, 0], -1
            ).astype(dtype)
        const[first_idx] = first_port.astype(const.dtype)
        if n <= _DOUBLING_MAX:
            rows[first_idx] = first_port[:, None].astype(rows.dtype)
            chosen = _scan_maps(rows)
        else:
            chosen = _scan_collapse(const, rows, ports)
    prev = np.empty(n, dtype=np.intp)
    prev[0] = 0
    prev[1:] = chosen[:-1]
    costs = np.abs(gap + positions[prev] - positions[chosen])
    costs[first_idx] = np.abs(first_targets - positions[first_port])
    return costs, chosen


@lru_cache(maxsize=8)
def _composition_table(p: int) -> np.ndarray:
    """Composition table of the monoid of maps ``{0..p-1} -> {0..p-1}``.

    A map ``f`` is encoded as the base-``p`` integer with digits
    ``f(0), f(1), ...``; ``table.ravel()[g * p**p + f]`` encodes ``g∘f``.
    """
    total = p ** p
    powers = p ** np.arange(p, dtype=np.int64)
    digits = (np.arange(total)[:, None] // powers[None, :]) % p
    table = np.empty((total, total), dtype=np.int32)
    for g in range(total):
        table[g] = (digits[g][digits] * powers[None, :]).sum(axis=1)
    return table.ravel()


#: Largest packed-map universe (p**p) the composition table covers:
#: ports <= 4 keep the table at 256x256 int32.
_TABLE_MAX = 256

#: Per-gap transition tables of up to this many entries are always
#: built (and cached) regardless of trace length — 64Ki int64 entries is
#: half a MB and covers every realistic track. Beyond it the table must
#: be amortized by the trace, else maps are resolved per access.
_TABLE_SPAN_FLOOR = 0xFFFF + 1

#: Below this length the O(n log n) Hillis–Steele doubling beats the
#: blocked scan (fewer numpy calls, everything cache-resident).
_DOUBLING_MAX = 4096

#: In-block length of the blocked scan: the Python loop runs this many
#: vectorized compose steps, each over all n/_SCAN_BLOCK blocks at once.
_SCAN_BLOCK = 128


@lru_cache(maxsize=8)
def _evaluation_table(p: int) -> np.ndarray:
    """Digit-extraction table: ``eval[f * p + s]`` is map ``f`` at state ``s``.

    Evaluating packed maps through one gather sidesteps the integer
    divisions of ``(f // p**s) % p``, which dominate the blocked scan's
    final stage otherwise.
    """
    total = p ** p
    powers = p ** np.arange(p, dtype=np.int64)
    digits = (np.arange(total)[:, None] // powers[None, :]) % p
    return np.ascontiguousarray(digits.ravel().astype(np.intp))


def _scan_packed(enc: np.ndarray, p: int) -> np.ndarray:
    """Port chosen at each access, from per-access table-packed maps.

    Prefix-composes the maps; element 0 must be a constant (reset) map,
    so every full prefix is constant and evaluating it at state 0 yields
    the chosen port. Short inputs use Hillis–Steele doubling (O(n log n)
    but few calls); long ones the blocked two-level scan below.

    Two ports degenerate: nearest-port maps are monotone in the previous
    port (the targets ``gap + positions[k]`` increase with ``k``), so
    the crossing map ``{0 -> 1, 1 -> 0}`` cannot occur and every map is
    a constant or the identity. Composition then reduces to "the most
    recent constant", one ``maximum.accumulate`` forward fill.
    """
    n = enc.size
    if p == 2:
        # Packed values: 0 = const-0, 3 = const-1, 2 = identity.
        last_reset = np.maximum.accumulate(
            np.where(enc != 2, np.arange(n, dtype=np.intp), 0)
        )
        return enc[last_reset] & 1
    if n <= _DOUBLING_MAX:
        total = p ** p
        table = _composition_table(p)
        span = 1
        while span < n:
            enc[span:] = table[enc[span:] * total + enc[:-span]]
            span *= 2
        return _evaluation_table(p)[enc * p]  # evaluated at state 0
    return _blocked_scan_packed(enc, p)


def _scan_maps(port_map: np.ndarray) -> np.ndarray:
    """Port chosen at each access, from explicit ``(n, p)`` map rows.

    Hillis–Steele doubling over the raw rows — O(n log n) composes but
    few numpy calls, so it wins for short inputs. Long inputs go through
    :func:`_scan_collapse` instead, which exploits that prefixes are
    constant maps; this helper stays as the simple oracle-adjacent
    fallback for ``n <= _DOUBLING_MAX``.
    """
    prefix = port_map.copy()
    n = prefix.shape[0]
    span = 1
    while span < n:
        prefix[span:] = np.take_along_axis(prefix[span:], prefix[:-span], axis=1)
        span *= 2
    return prefix[:, 0]  # rows are constant maps: any column works


def _blocked_scan_packed(enc: np.ndarray, p: int) -> np.ndarray:
    """Blocked scan over table-packed maps: linear work, O(block) passes.

    Three stages: (1) an in-block inclusive prefix — ``_SCAN_BLOCK``
    vectorized table gathers, each composing position ``i`` of *every*
    block at once; (2) a doubling scan over the ~n/_SCAN_BLOCK per-block
    totals; (3) one vectorized evaluation-table gather resolving each
    in-block prefix at its block's entry state. Padding with the
    identity map keeps the last partial block exact.
    """
    n = enc.size
    total = p ** p
    table = _composition_table(p)
    evaluate = _evaluation_table(p)
    powers = p ** np.arange(p, dtype=np.int64)
    identity = int((np.arange(p, dtype=np.int64) * powers).sum())
    blocks = -(-n // _SCAN_BLOCK)
    padded = np.full(blocks * _SCAN_BLOCK, identity, dtype=np.int64)
    padded[:n] = enc
    cols = padded.reshape(blocks, _SCAN_BLOCK).T
    scaled = cols * total  # composition indices, one pass for all rounds
    prefix = np.empty((_SCAN_BLOCK, blocks), dtype=np.int64)
    prefix[0] = cols[0]
    for i in range(1, _SCAN_BLOCK):
        prefix[i] = table[scaled[i] + prefix[i - 1]]
    carry = prefix[-1].copy()  # inclusive per-block totals
    span = 1
    while span < blocks:
        carry[span:] = table[carry[span:] * total + carry[:-span]]
        span *= 2
    entry = np.empty(blocks, dtype=np.int64)
    # Block 0 starts at the global first access — a constant map, so its
    # entry state is arbitrary; later entries are the composed prefix of
    # all earlier blocks (constant for the same reason) evaluated at 0.
    entry[0] = 0
    entry[1:] = evaluate[carry[:-1] * p]
    chosen = evaluate[prefix * p + entry[None, :]]
    return np.ascontiguousarray(chosen.T).ravel()[:n]


#: Deepest run of consecutive constant-free blocks the collapse scan
#: repairs with cheap serial passes before switching to the doubling
#: fallback over explicit block summaries.
_COLLAPSE_DEPTH_MAX = 64


def _scan_collapse(
    const_val: np.ndarray, rows: np.ndarray, p: int
) -> np.ndarray:
    """Constant-collapse scan over wide-port ``(const, rows)`` map streams.

    Any composition ending in a constant map *is* that constant, so the
    prefix state at access ``i`` collapses to a scalar at the most
    recent constant map and stays scalar through the explicit rows that
    follow. The scan therefore never composes maps at all — it *chases
    states*: split the stream into ``_SCAN_BLOCK``-length blocks and run
    one vectorized chase step per in-block position over every block at
    once (a constant overwrites the state, an explicit row gathers it),
    tracking O(blocks) scalars instead of O(blocks * p) map rows.

    A provisional chase from entry state 0 is exact from each block's
    last constant onward, so its block-end states are exact wherever a
    block contains a constant. The rare constant-free blocks get their
    explicit ``p``-row summary composed directly, then a
    ``maximum.accumulate`` forward fill of the exact states (the any-p
    generalization of the packed path's p=2 degenerate case) repairs
    them in ``depth`` passes — bounded by the longest constant-free run,
    with a doubling scan over summary rows as the adversarial-input
    fallback. A final chase with true entry states is needed only when
    some entry is nonzero. Element 0 must be a constant (reset) map.
    """
    n = const_val.size
    blocks = -(-n // _SCAN_BLOCK)
    pad = blocks * _SCAN_BLOCK - n
    if pad:
        const_val = np.concatenate(
            [const_val, np.full(pad, -1, const_val.dtype)]
        )
        rows = np.concatenate(
            [rows, np.tile(np.arange(p, dtype=rows.dtype), (pad, 1))]
        )
    # Transpose so chase step i touches contiguous per-block lanes.
    cvT = np.ascontiguousarray(const_val.reshape(blocks, _SCAN_BLOCK).T)
    rT = np.ascontiguousarray(
        rows.reshape(blocks, _SCAN_BLOCK, p).transpose(1, 0, 2)
    )
    base = np.arange(blocks, dtype=np.intp) * p

    def chase(entry: np.ndarray) -> np.ndarray:
        out = np.empty((_SCAN_BLOCK, blocks), dtype=cvT.dtype)
        cur = entry
        for i in range(_SCAN_BLOCK):
            c = cvT[i]
            nxt = rT[i].ravel()[base + cur]
            cur = np.where(c >= 0, c, nxt)
            out[i] = cur
        return out

    provisional = chase(np.zeros(blocks, dtype=np.intp))
    if blocks == 1:
        return provisional.T.ravel()[:n].astype(np.intp)
    state_after = provisional[-1].astype(np.intp)
    has_const = cvT.max(axis=0) >= 0
    no_const = np.flatnonzero(~has_const)
    if no_const.size:
        # Constant-free blocks need their full map: compose their rows.
        sub = rows.reshape(blocks, _SCAN_BLOCK, p)[no_const]
        summary = sub[:, 0, :].astype(np.intp)
        for i in range(1, _SCAN_BLOCK):
            summary = np.take_along_axis(
                sub[:, i, :].astype(np.intp), summary, axis=1
            )
        idx = np.arange(blocks)
        last_exact = np.maximum.accumulate(np.where(has_const, idx, -1))
        depth = idx - last_exact  # >= 1 exactly on constant-free blocks
        max_depth = int(depth[no_const].max())
        if max_depth <= _COLLAPSE_DEPTH_MAX:
            compact = np.full(blocks, -1, dtype=np.intp)
            compact[no_const] = np.arange(no_const.size)
            for d in range(1, max_depth + 1):
                sel = no_const[depth[no_const] == d]
                if not sel.size:
                    break
                prev = np.where(
                    sel > 0, state_after[np.maximum(sel - 1, 0)], 0
                )
                state_after[sel] = summary[compact[sel], prev]
        else:
            # Adversarial streams (long constant-free runs): doubling
            # over explicit block summaries, exact blocks as constants.
            S = np.empty((blocks, p), dtype=np.intp)
            S[has_const] = state_after[has_const][:, None]
            S[no_const] = summary
            span = 1
            while span < blocks:
                S[span:] = np.take_along_axis(S[span:], S[:-span], axis=1)
                span *= 2
            state_after = S[:, 0]
    entry = np.empty(blocks, dtype=np.intp)
    entry[0] = 0
    entry[1:] = state_after[:-1]
    # The provisional chase already assumed entry 0 everywhere; redo the
    # in-block resolution only if some true entry state differs.
    chosen = provisional if not entry.any() else chase(entry)
    return np.ascontiguousarray(chosen.T).ravel()[:n].astype(np.intp)
