"""Batched NumPy backend: whole-trace shift computation, no per-access loop.

Accesses are stably sorted by DBC so every DBC's subsequence is a
contiguous run that still preserves trace order (DBCs shift
independently, so reordering across DBCs cannot change any cost).

*Single port* (and the STATIC policy, which is single-port-equivalent):
the track offset after serving slot ``s`` is always ``s - anchor``, so
consecutive costs are plain ``|diff|`` of slots within each run — an
argsort plus a masked ``diff`` and one ``bincount``.

*Multi-port nearest*: the only state the nearest-port controller carries
between accesses of a DBC is *which port served the previous access*
(the offset is then determined by the previous slot). Each access is
therefore a function ``prev_port -> (chosen port, cost)`` over a tiny
domain of ``p`` ports. We materialize those per-access port maps in bulk
and resolve the sequential dependency with a logarithmic prefix
composition (Hillis–Steele doubling over map composition) instead of a
Python loop: a run's first access is a *constant* map (its choice is
fixed by the known starting offset), so composed prefixes are constant
maps too and runs cannot leak state into each other.

*Cold start* needs no simulation at all: warm and cold controllers make
identical port choices, so cold cost is the warm cost plus the first
alignment distance of each DBC — handled analytically by simply not
zeroing the first access's charge.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.engine.semantics import PortPolicy, port_positions
from repro.engine.types import ShiftRequest, ShiftResult
from repro.errors import SimulationError


def _group_order(dbc: np.ndarray, num_dbcs: int) -> np.ndarray:
    """Stable argsort by DBC index.

    DBC counts are tiny, so sorting narrow keys lets numpy's radix sort
    touch far fewer bytes than a general int64 sort — worth ~3x on the
    single-port path, where the sort dominates.
    """
    key = dbc.astype(np.uint16) if num_dbcs <= 0xFFFF else dbc
    return np.argsort(key, kind="stable")


def single_port_warm_total(dbc: np.ndarray, slot: np.ndarray) -> int:
    """Total warm-start single-port shifts for per-access dbc/slot arrays.

    The minimal kernel behind the analytic cost model's fast path (the
    GA's fitness loop): sum of intra-DBC consecutive slot distances.
    """
    if dbc.size <= 1:
        return 0
    order = _group_order(dbc, int(dbc.max()) + 1)
    ds = dbc[order]
    ss = slot[order]
    same = ds[1:] == ds[:-1]
    return int(np.abs(np.diff(ss))[same].sum())


class NumpyBackend:
    """Executes requests with vectorized segment operations."""

    name = "numpy"

    def run(self, request: ShiftRequest) -> ShiftResult:
        init_offsets, init_aligned = request.resolved_init()
        n = request.accesses
        if n == 0:
            return ShiftResult(
                accesses=0,
                shifts=0,
                per_dbc_shifts=(0,) * request.num_dbcs,
                final_offsets=init_offsets.copy(),
                final_aligned=init_aligned.copy(),
            )
        slot = request.slot
        lo, hi = int(slot.min()), int(slot.max())
        if lo < 0 or hi >= request.domains:
            bad = lo if lo < 0 else hi
            raise SimulationError(
                f"location {bad} outside track of {request.domains} domains"
            )
        positions = np.asarray(
            port_positions(request.domains, request.ports), dtype=np.int64
        )
        order = _group_order(request.dbc, request.num_dbcs)
        ds = request.dbc[order]
        ss = slot[order]
        run_first = np.empty(n, dtype=bool)
        run_first[0] = True
        np.not_equal(ds[1:], ds[:-1], out=run_first[1:])
        first_idx = np.flatnonzero(run_first)       # one per accessed DBC
        first_dbc = ds[first_idx]                   # unique, ascending
        last_idx = np.append(first_idx[1:] - 1, n - 1)
        if request.ports == 1 or request.policy is PortPolicy.STATIC:
            costs, last_port = _anchored_costs(
                ss, first_idx, first_dbc, positions, init_offsets
            )
        else:
            costs, last_port = _nearest_costs(
                ss, run_first, first_idx, first_dbc, positions, init_offsets
            )
        if request.warm_start:
            costs[first_idx[~init_aligned[first_dbc]]] = 0
        per_dbc = np.zeros(request.num_dbcs, dtype=np.int64)
        np.add.at(per_dbc, ds, costs)
        final_offsets = init_offsets.copy()
        final_aligned = init_aligned.copy()
        final_offsets[first_dbc] = ss[last_idx] - positions[last_port]
        final_aligned[first_dbc] = True
        return ShiftResult(
            accesses=n,
            shifts=int(per_dbc.sum()),
            per_dbc_shifts=tuple(int(c) for c in per_dbc),
            final_offsets=final_offsets,
            final_aligned=final_aligned,
        )


def _anchored_costs(
    ss: np.ndarray,
    first_idx: np.ndarray,
    first_dbc: np.ndarray,
    positions: np.ndarray,
    init_offsets: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Costs when every access uses port 0 (single port or STATIC)."""
    anchor = positions[0]
    costs = np.empty(ss.size, dtype=np.int64)
    costs[1:] = np.abs(np.diff(ss))
    costs[first_idx] = np.abs(ss[first_idx] - anchor - init_offsets[first_dbc])
    return costs, np.zeros(first_dbc.size, dtype=np.int64)


def _nearest_costs(
    ss: np.ndarray,
    run_first: np.ndarray,
    first_idx: np.ndarray,
    first_dbc: np.ndarray,
    positions: np.ndarray,
    init_offsets: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Costs under nearest-port selection (the vectorized port sweep)."""
    n = ss.size
    p = positions.size
    gap = np.empty(n, dtype=np.int64)
    gap[0] = 0
    np.subtract(ss[1:], ss[:-1], out=gap[1:])
    # Per-access port maps: entering an access having used port k before,
    # the signed move to port j is gap + positions[k] - positions[j].
    # argmin of |.| takes the first (lowest-index) minimum, matching
    # select_port's strict-< tie-break.
    port_map = np.empty((n, p), dtype=np.int64)
    move_cost = np.empty((n, p), dtype=np.int64)
    for k in range(p):
        deltas = np.abs(gap[:, None] + (positions[k] - positions)[None, :])
        chosen = np.argmin(deltas, axis=1)
        port_map[:, k] = chosen
        move_cost[:, k] = np.take_along_axis(
            deltas, chosen[:, None], axis=1
        )[:, 0]
    # A run's first access starts from the DBC's known offset, so its map
    # is constant — composition below can never cross run boundaries.
    first_delta = np.abs(
        ss[first_idx][:, None] - positions[None, :]
        - init_offsets[first_dbc][:, None]
    )
    first_port = np.argmin(first_delta, axis=1)
    first_cost = np.take_along_axis(
        first_delta, first_port[:, None], axis=1
    )[:, 0]
    port_map[first_idx] = first_port[:, None]
    chosen = _compose_scan(port_map, p)
    costs = np.empty(n, dtype=np.int64)
    interior = np.flatnonzero(~run_first)
    costs[interior] = move_cost[interior, chosen[interior - 1]]
    costs[first_idx] = first_cost
    return costs, chosen[np.append(first_idx[1:] - 1, n - 1)]


@lru_cache(maxsize=8)
def _composition_table(p: int) -> np.ndarray:
    """Composition table of the monoid of maps ``{0..p-1} -> {0..p-1}``.

    A map ``f`` is encoded as the base-``p`` integer with digits
    ``f(0), f(1), ...``; ``table.ravel()[g * p**p + f]`` encodes ``g∘f``.
    """
    total = p ** p
    powers = p ** np.arange(p, dtype=np.int64)
    digits = (np.arange(total)[:, None] // powers[None, :]) % p
    table = np.empty((total, total), dtype=np.int32)
    for g in range(total):
        table[g] = (digits[g][digits] * powers[None, :]).sum(axis=1)
    return table.ravel()


def _compose_scan(port_map: np.ndarray, p: int) -> np.ndarray:
    """Port chosen at each access, given per-access ``prev -> next`` maps.

    Prefix-composes the maps with Hillis–Steele doubling; access 0 carries
    a constant (reset) map, so every prefix is constant and evaluating it
    at state 0 yields the chosen port. For small ``p`` each map is packed
    into one integer and composed through a cached monoid table — one
    1-D gather per element per round instead of ``p`` — which is the
    difference between beating and merely matching the per-access loop.
    """
    n = port_map.shape[0]
    if p ** p <= 256:  # ports <= 4: the table stays tiny (256x256 int32)
        total = p ** p
        powers = p ** np.arange(p, dtype=np.int64)
        table = _composition_table(p)
        enc = port_map @ powers
        span = 1
        while span < n:
            enc[span:] = table[enc[span:] * total + enc[:-span]]
            span *= 2
        return enc % p  # digit 0 = the map evaluated at state 0
    prefix = port_map.copy()
    span = 1
    while span < n:
        prefix[span:] = np.take_along_axis(prefix[span:], prefix[:-span], axis=1)
        span *= 2
    return prefix[:, 0]  # rows are constant maps: any column works
