"""Resumable chunked replay: the :class:`ShiftCursor`.

A cursor is the engine-side half of streaming replay: it owns the
per-DBC head state (``offsets``/``aligned``) plus the accumulated
access/shift/write counters, and :meth:`ShiftCursor.replay_chunk`
advances all of it by one compiled chunk. Because both backends'
monoid-scan formulations accept a carry-in (``init_offsets``/
``init_aligned`` on :class:`~repro.engine.types.ShiftRequest`), the
scan is associative across chunk boundaries: replaying a trace in
chunks of *any* size — including one access at a time — produces
bit-identical counters and final state to a single monolithic
:meth:`run` of the whole trace. That invariance is the cursor's
contract, enforced by the equivalence test matrix over chunk sizes,
backends, port counts and cold/warm starts.

``warm_start`` composes correctly with the carry: the engine only
grants the free first-access alignment to DBCs whose carried
``aligned`` flag is still False, so a DBC first touched in chunk 7
gets exactly the same free alignment it would get monolithically, and
a DBC already aligned by an earlier chunk is charged normally.
"""

from __future__ import annotations

import numpy as np

from repro.engine.semantics import PortPolicy
from repro.engine.types import ShiftRequest, ShiftResult
from repro.errors import SimulationError


class ShiftCursor:
    """Carryable replay state over a fixed DBC geometry.

    Parameters mirror :class:`~repro.engine.types.ShiftRequest` minus
    the access arrays, which arrive chunk by chunk. ``init_offsets`` /
    ``init_aligned`` seed the cursor mid-state (e.g. from a controller
    that already executed earlier traces); by default every DBC starts
    at offset 0, unaligned. ``backend`` accepts anything
    :func:`repro.engine.get_backend` does — including ``"auto"`` and
    the optional compiled backend, whose carry-in support makes chunked
    replay chunk-size-invariant exactly like the core backends.
    """

    def __init__(
        self,
        num_dbcs: int,
        domains: int,
        ports: int = 1,
        policy: PortPolicy = PortPolicy.NEAREST,
        warm_start: bool = True,
        backend: object = None,
        init_offsets: np.ndarray | None = None,
        init_aligned: np.ndarray | None = None,
    ) -> None:
        from repro.engine import get_backend

        if num_dbcs < 1:
            raise SimulationError(f"num_dbcs must be >= 1, got {num_dbcs}")
        self.num_dbcs = int(num_dbcs)
        self.domains = int(domains)
        self.ports = int(ports)
        self.policy = policy
        self.warm_start = warm_start
        self._backend = get_backend(backend)
        if init_offsets is None:
            self._offsets = np.zeros(self.num_dbcs, dtype=np.int64)
        else:
            self._offsets = np.array(init_offsets, dtype=np.int64)
        if init_aligned is None:
            self._aligned = np.zeros(self.num_dbcs, dtype=bool)
        else:
            self._aligned = np.array(init_aligned, dtype=bool)
        self._per_dbc_shifts = np.zeros(self.num_dbcs, dtype=np.int64)
        self._accesses = 0
        self._shifts = 0
        self._writes = 0

    # -- replay --------------------------------------------------------------

    def replay_chunk(
        self,
        dbc: np.ndarray,
        slot: np.ndarray,
        writes: np.ndarray | None = None,
    ) -> ShiftResult:
        """Advance the cursor by one compiled chunk.

        ``dbc``/``slot`` are the chunk's per-access arrays (trace
        order); ``writes`` optionally feeds the cursor's write counter
        for energy accounting. Returns the chunk's own
        :class:`~repro.engine.types.ShiftResult` (counters for *this*
        chunk; final state = the cursor's new state).
        """
        result = self._backend.run(
            ShiftRequest(
                dbc=dbc,
                slot=slot,
                num_dbcs=self.num_dbcs,
                domains=self.domains,
                ports=self.ports,
                policy=self.policy,
                warm_start=self.warm_start,
                init_offsets=self._offsets,
                init_aligned=self._aligned,
            )
        )
        self._offsets = np.asarray(result.final_offsets, dtype=np.int64)
        self._aligned = np.asarray(result.final_aligned, dtype=bool)
        self._per_dbc_shifts += np.asarray(result.per_dbc_shifts,
                                           dtype=np.int64)
        self._accesses += result.accesses
        self._shifts += result.shifts
        if writes is not None:
            self._writes += int(np.count_nonzero(writes))
        return result

    def result(self) -> ShiftResult:
        """The accumulated totals as one :class:`ShiftResult`.

        Equal — by the associativity contract — to the result of one
        monolithic run over the concatenation of every chunk replayed
        so far.
        """
        return ShiftResult(
            accesses=self._accesses,
            shifts=self._shifts,
            per_dbc_shifts=tuple(int(s) for s in self._per_dbc_shifts),
            final_offsets=self._offsets.copy(),
            final_aligned=self._aligned.copy(),
        )

    def reset(self) -> None:
        """Return to the cold initial state (offset 0, unaligned, zeros)."""
        self._offsets = np.zeros(self.num_dbcs, dtype=np.int64)
        self._aligned = np.zeros(self.num_dbcs, dtype=bool)
        self._per_dbc_shifts = np.zeros(self.num_dbcs, dtype=np.int64)
        self._accesses = 0
        self._shifts = 0
        self._writes = 0

    # -- accessors -----------------------------------------------------------

    @property
    def offsets(self) -> np.ndarray:
        """Current per-DBC head offsets (int64, length ``num_dbcs``)."""
        return self._offsets

    @property
    def aligned(self) -> np.ndarray:
        """Per-DBC flag: has this DBC been accessed (head meaningful)?"""
        return self._aligned

    @property
    def per_dbc_shifts(self) -> np.ndarray:
        return self._per_dbc_shifts

    @property
    def accesses(self) -> int:
        return self._accesses

    @property
    def shifts(self) -> int:
        return self._shifts

    @property
    def writes(self) -> int:
        return self._writes

    def __repr__(self) -> str:
        return (
            f"<ShiftCursor {self.num_dbcs} DBCs x {self.domains} domains, "
            f"{self.ports} port(s): {self._accesses} accesses, "
            f"{self._shifts} shifts>"
        )
