"""Resumable chunked replay: the :class:`ShiftCursor`.

A cursor is the engine-side half of streaming replay: it owns the
per-DBC head state (``offsets``/``aligned``) plus the accumulated
access/shift/write counters, and :meth:`ShiftCursor.replay_chunk`
advances all of it by one compiled chunk. Because both backends'
monoid-scan formulations accept a carry-in (``init_offsets``/
``init_aligned`` on :class:`~repro.engine.types.ShiftRequest`), the
scan is associative across chunk boundaries: replaying a trace in
chunks of *any* size — including one access at a time — produces
bit-identical counters and final state to a single monolithic
:meth:`run` of the whole trace. That invariance is the cursor's
contract, enforced by the equivalence test matrix over chunk sizes,
backends, port counts and cold/warm starts.

``warm_start`` composes correctly with the carry: the engine only
grants the free first-access alignment to DBCs whose carried
``aligned`` flag is still False, so a DBC first touched in chunk 7
gets exactly the same free alignment it would get monolithically, and
a DBC already aligned by an earlier chunk is charged normally.
"""

from __future__ import annotations

import numpy as np

from repro.engine.faults import FaultModel, FaultObservation
from repro.engine.semantics import PortPolicy
from repro.engine.types import ShiftRequest, ShiftResult
from repro.errors import SimulationError


class ShiftCursor:
    """Carryable replay state over a fixed DBC geometry.

    Parameters mirror :class:`~repro.engine.types.ShiftRequest` minus
    the access arrays, which arrive chunk by chunk. ``init_offsets`` /
    ``init_aligned`` seed the cursor mid-state (e.g. from a controller
    that already executed earlier traces); by default every DBC starts
    at offset 0, unaligned. ``backend`` accepts anything
    :func:`repro.engine.get_backend` does — including ``"auto"`` and
    the optional compiled backend, whose carry-in support makes chunked
    replay chunk-size-invariant exactly like the core backends.

    With a ``fault`` model attached, the cursor also carries the
    per-DBC physical-minus-believed drift across chunks and threads the
    absolute access index (``access_base`` plus the accesses replayed
    so far) into each chunk's request — the counter-based fault RNG is
    keyed on that index, so chunked faulted replay stays bit-identical
    to monolithic faulted replay at any chunk size. :meth:`scrub`
    implements the position-error scrubbing primitive on top of the
    drift state.
    """

    def __init__(
        self,
        num_dbcs: int,
        domains: int,
        ports: int = 1,
        policy: PortPolicy = PortPolicy.NEAREST,
        warm_start: bool = True,
        backend: object = None,
        init_offsets: np.ndarray | None = None,
        init_aligned: np.ndarray | None = None,
        fault: FaultModel | None = None,
        access_base: int = 0,
        init_drifts: np.ndarray | None = None,
    ) -> None:
        from repro.engine import get_backend

        if num_dbcs < 1:
            raise SimulationError(f"num_dbcs must be >= 1, got {num_dbcs}")
        self.num_dbcs = int(num_dbcs)
        self.domains = int(domains)
        self.ports = int(ports)
        self.policy = policy
        self.warm_start = warm_start
        self._backend = get_backend(backend)
        if fault is not None and fault.is_null:
            fault = None  # same normalization as ShiftRequest
        self.fault = fault
        if access_base < 0:
            raise SimulationError(
                f"access_base must be >= 0, got {access_base}"
            )
        self.access_base = int(access_base)
        if init_offsets is None:
            self._offsets = np.zeros(self.num_dbcs, dtype=np.int64)
        else:
            self._offsets = np.array(init_offsets, dtype=np.int64)
        if init_aligned is None:
            self._aligned = np.zeros(self.num_dbcs, dtype=bool)
        else:
            self._aligned = np.array(init_aligned, dtype=bool)
        if init_drifts is None:
            self._drifts = np.zeros(self.num_dbcs, dtype=np.int64)
        else:
            if fault is None and np.any(np.asarray(init_drifts) != 0):
                raise SimulationError(
                    "init_drifts requires a fault model: nonzero drift "
                    "cannot evolve without one"
                )
            self._drifts = np.array(init_drifts, dtype=np.int64)
        self._per_dbc_shifts = np.zeros(self.num_dbcs, dtype=np.int64)
        self._accesses = 0
        self._shifts = 0
        self._writes = 0
        self._fault_injected = 0
        self._fault_misaligned = 0
        self._corrupted = False
        self._scrub_shifts = 0
        self._scrub_events = 0

    # -- replay --------------------------------------------------------------

    def replay_chunk(
        self,
        dbc: np.ndarray,
        slot: np.ndarray,
        writes: np.ndarray | None = None,
    ) -> ShiftResult:
        """Advance the cursor by one compiled chunk.

        ``dbc``/``slot`` are the chunk's per-access arrays (trace
        order); ``writes`` optionally feeds the cursor's write counter
        for energy accounting. Returns the chunk's own
        :class:`~repro.engine.types.ShiftResult` (counters for *this*
        chunk; final state = the cursor's new state).
        """
        result = self._backend.run(
            ShiftRequest(
                dbc=dbc,
                slot=slot,
                num_dbcs=self.num_dbcs,
                domains=self.domains,
                ports=self.ports,
                policy=self.policy,
                warm_start=self.warm_start,
                init_offsets=self._offsets,
                init_aligned=self._aligned,
                fault=self.fault,
                access_base=self.access_base + self._accesses,
                init_drifts=self._drifts if self.fault is not None else None,
            )
        )
        self._offsets = np.asarray(result.final_offsets, dtype=np.int64)
        self._aligned = np.asarray(result.final_aligned, dtype=bool)
        self._per_dbc_shifts += np.asarray(result.per_dbc_shifts,
                                           dtype=np.int64)
        self._accesses += result.accesses
        self._shifts += result.shifts
        if writes is not None:
            self._writes += int(np.count_nonzero(writes))
        if result.faults is not None:
            self._drifts = np.asarray(result.faults.final_drifts,
                                      dtype=np.int64)
            self._fault_injected += result.faults.injected
            self._fault_misaligned += result.faults.misaligned
            self._corrupted = self._corrupted or result.faults.corrupted
        return result

    def scrub(self) -> int:
        """Realign every drifted track, charging the corrective shifts.

        The scrubbing primitive of the coding layer: a position-error
        scrub reads each track's alignment mark and issues ``|drift|``
        corrective shifts to cancel the accumulated drift. Returns the
        shifts charged (also accumulated separately as
        :attr:`scrub_shifts`, so callers can price scrub traffic apart
        from placement traffic). Requires an attached fault model —
        without one there is no drift to scrub.
        """
        if self.fault is None:
            raise SimulationError(
                "scrub() requires a fault model: a clean cursor has no "
                "position drift to correct"
            )
        shifts = int(np.abs(self._drifts).sum())
        self._drifts = np.zeros(self.num_dbcs, dtype=np.int64)
        self._scrub_shifts += shifts
        self._scrub_events += 1
        return shifts

    def result(self) -> ShiftResult:
        """The accumulated totals as one :class:`ShiftResult`.

        Equal — by the associativity contract — to the result of one
        monolithic run over the concatenation of every chunk replayed
        so far.
        """
        faults = None
        if self.fault is not None:
            faults = FaultObservation(
                injected=self._fault_injected,
                misaligned=self._fault_misaligned,
                final_drifts=self._drifts.copy(),
                corrupted=self._corrupted,
                corrective_shifts=self._scrub_shifts,
            )
        return ShiftResult(
            accesses=self._accesses,
            shifts=self._shifts,
            per_dbc_shifts=tuple(int(s) for s in self._per_dbc_shifts),
            final_offsets=self._offsets.copy(),
            final_aligned=self._aligned.copy(),
            faults=faults,
        )

    def reset(self) -> None:
        """Return to the cold initial state (offset 0, unaligned, zeros)."""
        self._offsets = np.zeros(self.num_dbcs, dtype=np.int64)
        self._aligned = np.zeros(self.num_dbcs, dtype=bool)
        self._drifts = np.zeros(self.num_dbcs, dtype=np.int64)
        self._per_dbc_shifts = np.zeros(self.num_dbcs, dtype=np.int64)
        self._accesses = 0
        self._shifts = 0
        self._writes = 0
        self._fault_injected = 0
        self._fault_misaligned = 0
        self._corrupted = False
        self._scrub_shifts = 0
        self._scrub_events = 0

    # -- accessors -----------------------------------------------------------

    @property
    def offsets(self) -> np.ndarray:
        """Current per-DBC head offsets (int64, length ``num_dbcs``)."""
        return self._offsets

    @property
    def aligned(self) -> np.ndarray:
        """Per-DBC flag: has this DBC been accessed (head meaningful)?"""
        return self._aligned

    @property
    def per_dbc_shifts(self) -> np.ndarray:
        return self._per_dbc_shifts

    @property
    def accesses(self) -> int:
        return self._accesses

    @property
    def shifts(self) -> int:
        return self._shifts

    @property
    def writes(self) -> int:
        return self._writes

    @property
    def drifts(self) -> np.ndarray:
        """Current per-DBC physical-minus-believed drift (all zero clean)."""
        return self._drifts

    @property
    def fault_injected(self) -> int:
        return self._fault_injected

    @property
    def fault_misaligned(self) -> int:
        return self._fault_misaligned

    @property
    def corrupted(self) -> bool:
        """Sticky: did any access ever leave the physical track envelope?"""
        return self._corrupted

    @property
    def scrub_shifts(self) -> int:
        return self._scrub_shifts

    @property
    def scrub_events(self) -> int:
        return self._scrub_events

    def __repr__(self) -> str:
        return (
            f"<ShiftCursor {self.num_dbcs} DBCs x {self.domains} domains, "
            f"{self.ports} port(s): {self._accesses} accesses, "
            f"{self._shifts} shifts>"
        )
