"""Command-line entry points.

* ``repro-place``      — place a trace file and print the placement + cost.
* ``repro-sim``        — place and simulate, printing the full report.
* ``repro-suite``      — inspect the generated OffsetStone-like suite.
* ``repro-experiment`` — regenerate a table/figure of the paper, over the
  default suite or any ``--workloads`` specs (see docs/workloads.md).
* ``repro-store``      — inspect/maintain persistent experiment stores
  (lives in :mod:`repro.store.cli`).
* ``repro-trace``      — inspect/ingest/convert trace files
  (lives in :mod:`repro.trace.cli`).
"""

from __future__ import annotations

import argparse
import math
import sys
from collections.abc import Sequence
from dataclasses import replace

from repro.core.cost import per_dbc_shift_costs
from repro.core.policies import available_policies, get_policy
from repro.engine import AUTO_BACKEND, backend_choices, describe_backends
from repro.errors import ExperimentError, SimulationError, WorkloadError
from repro.eval import experiments as exp
from repro.eval.profiles import profile_from_env
from repro.eval.reporting import render_experiment, save_experiment
from repro.rtm.geometry import RTMConfig
from repro.rtm.sim import simulate
from repro.trace.generators.offsetstone import (
    OFFSETSTONE_NAMES,
    load_benchmark,
)
from repro.trace.io import read_traces
from repro.util.tables import format_table


def _check_backend_arg(parser: argparse.ArgumentParser, name) -> None:
    """Fail argparse-style when ``--backend`` names an uninstalled backend.

    ``backend_choices()`` deliberately accepts known optional backends
    (e.g. ``numba`` without the ``compiled`` extra) so the user sees the
    engine's pointed install hint here instead of argparse's generic
    "invalid choice". ``auto`` always resolves, so its calibration is
    deferred to first real use.
    """
    if name is None or name == AUTO_BACKEND:
        return
    from repro.engine import get_backend

    try:
        get_backend(name)
    except SimulationError as exc:
        parser.error(str(exc))


def _add_device_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dbcs", type=int, default=4,
                        help="number of DBCs (default 4)")
    parser.add_argument("--domains", type=int, default=256,
                        help="domains per track = locations per DBC (default 256)")
    parser.add_argument("--ports", type=int, default=1,
                        help="access ports per track (default 1)")
    parser.add_argument("--policy", default="DMA-SR",
                        choices=sorted(available_policies()),
                        help="placement policy (default DMA-SR)")
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument("--backend", default=None,
                        choices=backend_choices(),
                        help="shift-engine backend (default: numpy, or "
                             "REPRO_BACKEND; 'auto' picks the fastest "
                             "available)")


def main_place(argv: Sequence[str] | None = None) -> int:
    """Place the traces of a file and print per-DBC layouts and costs."""
    parser = argparse.ArgumentParser(
        prog="repro-place", description=main_place.__doc__
    )
    parser.add_argument("trace_file", help="trace file (see repro.trace.io)")
    _add_device_args(parser)
    parser.add_argument(
        "--program", action="store_true",
        help="fuse all traces into one program and emit a single layout",
    )
    args = parser.parse_args(argv)
    _check_backend_arg(parser, args.backend)
    policy = get_policy(args.policy)
    traces = read_traces(args.trace_file)
    if args.program:
        from repro.core.program import place_program
        result = place_program(
            [t.sequence for t in traces], args.dbcs, args.domains,
            policy=policy, rng=args.seed,
        )
        print(f"program layout over {len(traces)} sequences "
              f"({len(result.placement.variables)} variables):")
        for i, dbc in enumerate(result.placement.dbc_lists()):
            names = [v for v in dbc if v is not None]
            if names:
                print(f"  DBC{i}: {' '.join(names)}")
        for name, cost in result.per_sequence_costs.items():
            print(f"  {name}: {cost} shifts")
        print(f"  total shifts: {result.total_cost}")
        return 0
    for trace in traces:
        seq = trace.sequence
        placement = policy.place(seq, args.dbcs, args.domains, rng=args.seed)
        costs = per_dbc_shift_costs(
            seq, placement, ports=args.ports,
            domains=args.domains if args.ports > 1 else None,
            backend=args.backend,
        )
        print(f"trace {seq.name}: {len(seq)} accesses, "
              f"{seq.num_variables} variables")
        for i, dbc in enumerate(placement.dbc_lists()):
            names = [v for v in dbc if v is not None]
            if names:
                print(f"  DBC{i} ({costs[i]} shifts): {' '.join(names)}")
        print(f"  total shifts: {sum(costs)}")
    return 0


def main_sim(argv: Sequence[str] | None = None) -> int:
    """Place and simulate traces, printing latency and energy reports."""
    parser = argparse.ArgumentParser(prog="repro-sim", description=main_sim.__doc__)
    parser.add_argument("trace_file", help="trace file (see repro.trace.io)")
    _add_device_args(parser)
    parser.add_argument("--cold-start", action="store_true",
                        help="charge the initial alignment shifts")
    args = parser.parse_args(argv)
    _check_backend_arg(parser, args.backend)
    config = RTMConfig(dbcs=args.dbcs, domains_per_track=args.domains,
                       ports_per_track=args.ports)
    policy = get_policy(args.policy)
    for trace in read_traces(args.trace_file):
        seq = trace.sequence
        placement = policy.place(seq, args.dbcs, args.domains, rng=args.seed)
        report = simulate(trace, placement, config,
                          warm_start=not args.cold_start,
                          backend=args.backend)
        print(f"trace {seq.name}: {report.summary()}")
    return 0


def main_suite(argv: Sequence[str] | None = None) -> int:
    """Show the generated OffsetStone-like benchmark suite."""
    parser = argparse.ArgumentParser(prog="repro-suite", description=main_suite.__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="suite scale in (0, 1] (default 1.0)")
    parser.add_argument("--seed", type=int, default=0, help="suite seed")
    parser.add_argument("names", nargs="*", default=list(OFFSETSTONE_NAMES),
                        help="benchmark names (default: all)")
    args = parser.parse_args(argv)
    rows = []
    for name in args.names:
        bench = load_benchmark(name, scale=args.scale, seed=args.seed)
        rows.append(
            [bench.name, bench.domain, bench.num_sequences,
             bench.max_variables, bench.max_length, bench.total_accesses]
        )
    print(format_table(
        ["Benchmark", "Domain", "Seqs", "MaxVars", "MaxLen", "Accesses"],
        rows, title=f"OffsetStone-like suite (scale={args.scale})",
    ))
    return 0


def _ablation(name):
    from repro.eval import ablations

    return getattr(ablations, name)


_EXPERIMENTS = {
    "table1": lambda profile: exp.experiment_table1(),
    "fig3": lambda profile: exp.experiment_fig3(),
    "fig4": exp.experiment_fig4,
    "fig5": exp.experiment_fig5,
    "fig6": exp.experiment_fig6,
    "sec4c": exp.experiment_sec4c,
    "sec4b": lambda profile: exp.experiment_sec4b_gap(profile),
    "ablation-ports": lambda profile: _ablation("ablation_ports")(profile),
    "ablation-multiset": lambda profile: _ablation("ablation_multiset")(profile),
    "ablation-swapping": lambda profile: _ablation("ablation_swapping")(profile),
    "ablation-dbc-sweep": lambda profile: _ablation("ablation_dbc_sweep")(profile),
    "ablation-faults": lambda profile: _ablation("ablation_faults")(profile),
}


def _print_matrix_stats() -> None:
    """Echo the last run's cache counters to stderr (never the report)."""
    from repro.eval.runner import last_matrix_stats

    stats = last_matrix_stats()
    if stats is not None:
        print(f"matrix cache: {stats.describe()}", file=sys.stderr)


def _list_workloads() -> int:
    """Print the workload registry and the built-in suite names."""
    from repro.workloads import describe_registry

    rows = [[kind, name, desc] for kind, name, desc in describe_registry()]
    print(format_table(
        ["Kind", "Name", "Description"], rows,
        title="workload registry (spec grammar: docs/workloads.md)",
    ))
    print("\noffsetstone benchmarks: " + " ".join(OFFSETSTONE_NAMES))
    return 0


def _list_backends() -> int:
    """Print every known shift-engine backend and its availability."""
    rows = [
        [name, "yes" if available else "no", note]
        for name, available, note in describe_backends()
    ]
    print(format_table(
        ["Backend", "Available", "Notes"], rows,
        title="shift-engine backends (docs/engine.md)",
    ))
    return 0


def main_experiment(argv: Sequence[str] | None = None) -> int:
    """Regenerate one of the paper's tables/figures."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment", description=main_experiment.__doc__
    )
    parser.add_argument("experiment", nargs="?", choices=sorted(_EXPERIMENTS),
                        help="which artifact to regenerate")
    parser.add_argument("--workloads", nargs="+", default=None,
                        metavar="SPEC",
                        help="evaluate these workload specs instead of the "
                             "profile's suite (e.g. offsetstone:h263 "
                             "file:traces/app.trc@interleave=2; default: "
                             "profile / REPRO_WORKLOADS)")
    parser.add_argument("--list-workloads", action="store_true",
                        help="print the workload sources/transforms "
                             "registry and exit")
    parser.add_argument("--list-backends", action="store_true",
                        help="print the shift-engine backends (including "
                             "uninstalled optional ones) and exit")
    parser.add_argument("--save", metavar="DIR", default=None,
                        help="also write the report (.txt + .json) under DIR")
    parser.add_argument("--max-rows", type=int, default=None,
                        help="truncate the table for display")
    parser.add_argument("--backend", default=None,
                        choices=backend_choices(),
                        help="shift-engine backend (default: profile / "
                             "REPRO_BACKEND; 'auto' picks the fastest "
                             "available)")
    parser.add_argument("--workers", type=int, default=None,
                        help="matrix-runner processes (default: profile / "
                             "REPRO_WORKERS; 0 = all cores)")
    parser.add_argument("--shared-traces", action="store_true",
                        default=None,
                        help="publish compiled traces to pool workers "
                             "through one zero-copy shared-memory arena "
                             "instead of pickling the suite per worker "
                             "(default: profile / REPRO_SHARED_TRACES; "
                             "bit-identical results, needs --workers > 1)")
    parser.add_argument("--search-scale", type=float, default=None,
                        help="multiply the GA population and RW iteration "
                             "budgets (default: profile / REPRO_SEARCH_SCALE)")
    parser.add_argument("--ports", type=int, nargs="+", default=None,
                        metavar="P",
                        help="port counts swept by the multi-port "
                             "experiments, e.g. --ports 1 2 4 8 (default: "
                             "profile / REPRO_PORTS)")
    parser.add_argument("--fault-rate", type=float, default=None,
                        metavar="P",
                        help="per-shift off-by-one fault probability in "
                             "[0, 1] injected into every simulated cell "
                             "(default: profile / REPRO_FAULT_RATE; 0 = "
                             "clean; see docs/faults.md)")
    parser.add_argument("--scrub-interval", type=int, default=None,
                        metavar="S",
                        help="realign drifted tracks every S accesses, "
                             "charging the corrective shifts (requires a "
                             "nonzero --fault-rate; default: profile / "
                             "REPRO_SCRUB_INTERVAL)")
    parser.add_argument("--store", metavar="PATH", default=None,
                        help="persistent experiment store (default: "
                             "REPRO_STORE; cells are read from and written "
                             "back to it)")
    parser.add_argument("--shard", metavar="i/N", default=None,
                        help="compute only this deterministic slice of the "
                             "matrix into the store, skip the report "
                             "(requires --store/REPRO_STORE)")
    parser.add_argument("--from-store", action="store_true",
                        help="regenerate the report purely from stored "
                             "cells; fail instead of simulating")
    parser.add_argument("--enqueue", action="store_true",
                        help="submit the matrix's missing cells to the "
                             "store's work queue instead of computing; "
                             "repro-worker processes pulling from the "
                             "store do the math (requires --store/"
                             "REPRO_STORE)")
    args = parser.parse_args(argv)
    if args.list_workloads:
        return _list_workloads()
    if args.list_backends:
        return _list_backends()
    _check_backend_arg(parser, args.backend)
    if (args.experiment is None and args.workloads
            and args.workloads[-1] in _EXPERIMENTS):
        # `--workloads spec... fig6`: the greedy nargs='+' swallowed the
        # trailing experiment name; no workload spec is ever named like
        # an experiment, so reclaim it.
        args.experiment = args.workloads.pop()
        if not args.workloads:
            parser.error("--workloads needs at least one spec")
    if args.experiment is None:
        parser.error("an experiment is required "
                     "(or --list-workloads / --list-backends)")
    try:
        profile = profile_from_env()
    except ExperimentError as exc:
        # Bad env configuration (REPRO_PROFILE/REPRO_WORKLOADS/...) ends
        # cleanly, matching the experiment-execution error path below.
        print(f"repro-experiment: {exc}", file=sys.stderr)
        return 2
    if args.workloads is not None:
        profile = replace(profile, workloads=tuple(args.workloads))
    if args.backend is not None:
        profile = replace(profile, engine_backend=args.backend)
    if args.workers is not None:
        profile = replace(profile, workers=args.workers)
    if args.shared_traces is not None:
        profile = replace(profile, shared_traces=args.shared_traces)
    if args.search_scale is not None:
        if not math.isfinite(args.search_scale) or args.search_scale <= 0:
            parser.error("--search-scale must be a finite number > 0")
        profile = replace(profile, search_scale=args.search_scale)
    if args.ports is not None:
        if min(args.ports) < 1:
            parser.error("--ports must list port counts >= 1")
        profile = replace(profile, ports=tuple(args.ports))
    if args.fault_rate is not None:
        if not math.isfinite(args.fault_rate) or not 0.0 <= args.fault_rate <= 1.0:
            parser.error("--fault-rate must be a probability in [0, 1]")
        profile = replace(profile, fault_rate=args.fault_rate)
    if args.scrub_interval is not None:
        if args.scrub_interval < 1:
            parser.error("--scrub-interval must be >= 1")
        profile = replace(profile, scrub_interval=args.scrub_interval)
    # Checked only after every override is applied: the interval may come
    # from REPRO_SCRUB_INTERVAL with the rate supplied here, or vice versa.
    if profile.scrub_interval is not None and not profile.fault_rate:
        parser.error("--scrub-interval requires a nonzero --fault-rate "
                     "(scrubbing a clean simulation would only charge "
                     "useless shifts)")
    if args.store is not None:
        profile = replace(profile, store=args.store)
    if args.from_store:
        if profile.store is None:
            parser.error("--from-store requires --store or REPRO_STORE")
        profile = replace(profile, offline=True)
    if args.enqueue:
        if profile.store is None:
            parser.error("--enqueue requires --store or REPRO_STORE "
                         "(the work queue lives in the store)")
        if args.shard is not None:
            parser.error("--enqueue and --shard conflict: the queue "
                         "load-balances dynamically, shards statically")
        if args.from_store:
            parser.error("--enqueue and --from-store conflict")
        if args.experiment not in exp.MATRIX_POLICIES:
            parser.error(
                f"--enqueue only applies to matrix experiments "
                f"({', '.join(sorted(exp.MATRIX_POLICIES))})"
            )
        try:
            stats = exp.enqueue_matrix(args.experiment, profile)
        except (ExperimentError, WorkloadError) as exc:
            print(f"repro-experiment: {exc}", file=sys.stderr)
            return 2
        print(f"{args.experiment!r} submitted to the queue: "
              f"{stats.describe()}")
        print("start repro-worker processes on this store to compute, "
              "then regenerate with --from-store")
        return 0
    if args.shard is not None:
        from repro.eval.runner import parse_shard

        try:
            shard = parse_shard(args.shard)
        except ValueError as exc:
            parser.error(str(exc))
        if profile.store is None:
            parser.error("--shard requires --store or REPRO_STORE "
                         "(a shard's only output is the store)")
        if args.experiment not in exp.MATRIX_POLICIES:
            parser.error(
                f"--shard only applies to matrix experiments "
                f"({', '.join(sorted(exp.MATRIX_POLICIES))})"
            )
        stats = exp.populate_matrix(args.experiment, profile, shard=shard)
        print(f"shard {args.shard} of {args.experiment!r} populated: "
              f"{stats.describe()}")
        print(f"({stats.sharded_out} cell(s) belong to other shards)")
        return 0
    try:
        result = _EXPERIMENTS[args.experiment](profile)
    except (ExperimentError, WorkloadError) as exc:
        # Expected operational failures (offline cache miss, bad profile
        # configuration, unresolvable workload specs) end cleanly, not
        # with a traceback.
        print(f"repro-experiment: {exc}", file=sys.stderr)
        return 2
    print(render_experiment(result, max_rows=args.max_rows))
    _print_matrix_stats()
    if args.save:
        path = save_experiment(result, results_dir=args.save)
        print(f"\nsaved to {path} (+ JSON twin)")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual dispatch helper
    sys.exit(main_experiment())
