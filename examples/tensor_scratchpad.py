"""Tensor-contraction scratchpad: the paper's own motivating use case.

The authors' earlier work (Khan et al., LCTES'19 — reference [5] of the
paper) places tensor-contraction loop nests in an RTM scratchpad and
reports large shift savings. This example rebuilds that scenario with
the public API: a tiled 2-index contraction  C[i,j] += A[i,k] * B[k,j]
is lowered to a scalar access trace (one variable per scratchpad word),
placed with each policy, and simulated on a 4-DBC scratchpad.

Run:  python examples/tensor_scratchpad.py
"""

from repro import MemoryTrace, get_policy, iso_capacity_sweep, shift_cost, simulate
from repro.trace.sequence import AccessSequence
from repro.util.tables import format_table


def contraction_trace(n: int = 4, tile: int = 2) -> AccessSequence:
    """Access trace of a tiled matrix contraction over scratchpad words."""
    a = {(i, k): f"A_{i}_{k}" for i in range(n) for k in range(n)}
    b = {(k, j): f"B_{k}_{j}" for k in range(n) for j in range(n)}
    c = {(i, j): f"C_{i}_{j}" for i in range(n) for j in range(n)}
    variables = list(a.values()) + list(b.values()) + list(c.values()) + ["acc"]
    accesses: list[str] = []
    for i0 in range(0, n, tile):
        for j0 in range(0, n, tile):
            for k0 in range(0, n, tile):
                for i in range(i0, min(i0 + tile, n)):
                    for j in range(j0, min(j0 + tile, n)):
                        accesses.append(c[(i, j)])
                        accesses.append("acc")
                        for k in range(k0, min(k0 + tile, n)):
                            accesses.append(a[(i, k)])
                            accesses.append(b[(k, j)])
                            accesses.append("acc")
                        accesses.append("acc")
                        accesses.append(c[(i, j)])
    return AccessSequence(accesses, variables, name=f"contraction{n}x{n}t{tile}")


def main() -> None:
    config = [c for c in iso_capacity_sweep() if c.dbcs == 4][0]
    cap = config.locations_per_dbc

    rows = []
    for tile in (1, 2, 4):
        seq = contraction_trace(n=4, tile=tile)
        row = [f"tile={tile}", len(seq)]
        for policy_name in ("AFD-OFU", "DMA-SR", "MDMA-SR"):
            placement = get_policy(policy_name).place(seq, config.dbcs, cap)
            row.append(shift_cost(seq, placement))
        rows.append(row)
    print(format_table(
        ["schedule", "accesses", "AFD-OFU", "DMA-SR", "MDMA-SR"],
        rows,
        title="4x4 contraction on a 4-DBC RTM scratchpad (shift cost)",
    ))

    seq = contraction_trace(n=4, tile=2)
    placement = get_policy("DMA-SR").place(seq, config.dbcs, cap)
    report = simulate(MemoryTrace(seq), placement, config)
    print(f"\nDMA-SR, tile=2: {report.summary()}")
    print(
        "\nThe tiling choice shapes the trace's working sets: larger tiles"
        "\nlengthen each block's lifespan (fewer disjoint chains), smaller"
        "\ntiles rotate working sets faster — which the placement heuristics"
        "\nconvert into fewer shifts, the effect [5] exploits for tensor"
        "\nkernels on RTM scratchpads."
    )


if __name__ == "__main__":
    main()
