"""Place real DSP kernels in an RTM scratchpad.

The paper motivates RTM placement with embedded signal-processing
workloads (Sec. I, Sec. IV-A: OffsetStone spans image/signal/video
processing). This example generates access traces from actual loop nests
— FIR, IIR, an 8-point DCT, a radix-2 FFT, Viterbi decoding, GSM LPC —
and shows how much shifting each placement policy removes per kernel on
an 8-DBC scratchpad, plus the energy split of the winner.

Run:  python examples/dsp_kernel_placement.py
"""

from repro import MemoryTrace, get_policy, iso_capacity_sweep, shift_cost, simulate
from repro.trace.generators import (
    dct8,
    fft_butterfly,
    fir_filter,
    gsm_lpc,
    iir_biquad,
    viterbi_trellis,
)
from repro.util.tables import format_table

KERNELS = [
    ("FIR (16 taps)", fir_filter(taps=16, samples=24)),
    ("IIR biquad x3", iir_biquad(sections=3, samples=24)),
    ("DCT-8 (8 blocks)", dct8(blocks=8)),
    ("FFT radix-2 (32 pt)", fft_butterfly(n=32)),
    ("Viterbi (8 states)", viterbi_trellis(states=8, steps=12)),
    ("GSM LPC (order 8)", gsm_lpc(order=8, frames=4)),
]

POLICIES = ("AFD-OFU", "DMA-OFU", "DMA-Chen", "DMA-SR")


def main() -> None:
    config = [c for c in iso_capacity_sweep() if c.dbcs == 8][0]
    capacity = config.locations_per_dbc

    rows = []
    for label, seq in KERNELS:
        row = [label, seq.num_variables, len(seq)]
        for name in POLICIES:
            placement = get_policy(name).place(seq, config.dbcs, capacity)
            row.append(shift_cost(seq, placement))
        rows.append(row)
    print(format_table(
        ["kernel", "vars", "accesses", *POLICIES],
        rows,
        title=f"Shift cost per kernel on {config.describe()}",
    ))

    print("\nwinner's energy breakdown (DMA-SR):")
    for label, seq in KERNELS:
        placement = get_policy("DMA-SR").place(seq, config.dbcs, capacity)
        report = simulate(MemoryTrace(seq), placement, config)
        parts = report.energy_breakdown()
        total = report.total_energy_pj
        split = " / ".join(
            f"{k} {100 * v / total:.0f}%" for k, v in parts.items()
        )
        print(f"  {label:20s} {total:8.1f} pJ  ({split})")

    print(
        "\nNote: kernels with rotating per-nest temporaries (DCT, Viterbi)"
        "\nprofit most from the disjoint-lifespan separation; kernels whose"
        "\nstate stays live throughout (FIR delay line) gain mainly from"
        "\nthe intra-DBC ordering."
    )


if __name__ == "__main__":
    main()
