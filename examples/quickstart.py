"""Quickstart: place a memory trace in racetrack memory and simulate it.

Walks the paper's own running example (Fig. 3) through the public API:

1. build an access sequence,
2. inspect its liveness (the signal the DMA heuristic uses),
3. place it with the baseline (AFD-OFU) and the paper's heuristic (DMA-SR),
4. simulate both placements on a 4 KiB RTM and compare shifts/latency/energy.

Run:  python examples/quickstart.py
"""

from repro import (
    AccessSequence,
    Liveness,
    MemoryTrace,
    get_policy,
    iso_capacity_sweep,
    per_dbc_shift_costs,
    simulate,
)


def main() -> None:
    # -- 1. the paper's running example: 9 variables, 24 accesses ---------
    sequence = AccessSequence(
        list("ababcacaddaiefefgeghgihi"),
        variables=list("abcdefghi"),
        name="fig3",
    )
    print(f"sequence: {sequence!r}")

    # -- 2. liveness: frequencies, first/last occurrences, disjointness ---
    live = Liveness(sequence)
    print("\nliveness (A_v, F_v, L_v) — compare with the paper's Fig. 3-(e):")
    for v in sequence.variables:
        print(f"  {v}: A={live.frequency(v)}  F={live.first(v)}  L={live.last(v)}")
    print(f"  b and c disjoint? {live.disjoint('b', 'c')}")

    # -- 3. place with the baseline and with the paper's heuristic --------
    config = iso_capacity_sweep()[0]  # 2 DBCs x 32 tracks x 512 domains
    capacity = config.locations_per_dbc
    for name in ("AFD", "DMA", "DMA-SR", "GA"):
        policy = get_policy(name) if name != "GA" else get_policy(
            "GA", mu=30, lam=30, generations=40
        )
        placement = policy.place(sequence, config.dbcs, capacity, rng=0)
        costs = per_dbc_shift_costs(sequence, placement)
        lists = " | ".join(
            " ".join(dbc) for dbc in placement.dbc_lists() if dbc
        )
        print(f"\n{name}: {sum(costs)} shifts  (per DBC: {costs})")
        print(f"  layout: {lists}")

    # -- 4. full simulation: latency and energy on Table I parameters -----
    trace = MemoryTrace(sequence)  # first access of each variable = write
    print("\nsimulated on the 2-DBC 4KiB RTM of Table I:")
    for name in ("AFD", "DMA-SR"):
        placement = get_policy(name).place(sequence, config.dbcs, capacity)
        report = simulate(trace, placement, config)
        print(f"  {name:7s} {report.summary()}")


if __name__ == "__main__":
    main()
