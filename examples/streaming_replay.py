"""Streaming chunked replay: huge traces in bounded memory.

Hundred-million-access gem5 traces don't fit in RAM as numpy arrays —
and don't need to. This example (1) fabricates a raw address trace,
(2) ingests it twice — monolithically and through the two-pass
streaming census — and shows the contents are *bit-identical* (same
variables, same content fingerprint, so the experiment store can't
tell them apart), (3) replays it chunk by chunk through the engine's
``ShiftCursor`` at several chunk sizes and shows every replay lands on
exactly the monolithic ``SimReport``, and (4) runs it as a
``stream=1`` ``file:`` workload spec, the one-line way to get all of
this from the matrix CLI.

Run:  python examples/streaming_replay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core.placement import Placement
from repro.engine.compile import trace_fingerprint
from repro.rtm.geometry import RTMConfig
from repro.rtm.sim import simulate
from repro.trace.io import read_address_trace
from repro.trace.streaming import stream_address_trace
from repro.workloads import WorkloadContext, resolve_workload


def fabricate_address_trace(path: Path, accesses: int = 120_000) -> None:
    """Zipf-hot traffic over a 64-word heap, as a pintool would log it."""
    rng = np.random.default_rng(23)
    probs = 1.0 / np.arange(1, 65) ** 1.2
    probs /= probs.sum()
    idx = rng.choice(64, size=accesses, p=probs)
    ops = np.where(rng.random(accesses) < 0.3, "w", "r")
    with path.open("w", encoding="utf-8") as fh:
        for a, op in zip(idx, ops):
            fh.write(f"{op},0x{0x1000 + 8 * a:x}\n")


def main() -> None:
    tmp = Path(tempfile.mkdtemp(prefix="repro-stream-"))
    raw = tmp / "app.trc"
    fabricate_address_trace(raw)
    print(f"fabricated raw address trace: {raw}")

    # (2) Ingest both ways; contents are bit-identical.
    mono = read_address_trace(raw, word_bytes=8)
    streamed = stream_address_trace(raw, chunk=10_000, word_bytes=8)
    assert streamed.variables == mono.sequence.variables
    assert streamed.content_fingerprint == trace_fingerprint(mono)
    print(
        f"ingested {len(mono):,} accesses over "
        f"{mono.sequence.num_variables} variables; streaming fingerprint == "
        f"monolithic fingerprint ({streamed.content_fingerprint[:16]}...)"
    )

    # (3) Replay: any chunk size lands on the monolithic report.
    config = RTMConfig(dbcs=8, tracks_per_dbc=1, domains_per_track=64,
                       ports_per_track=2)
    lists = [[] for _ in range(config.dbcs)]
    for code, name in enumerate(mono.sequence.variables):
        lists[code % config.dbcs].append(name)
    placement = Placement([tuple(lst) for lst in lists])
    reference = simulate(mono, placement, config)
    print(f"monolithic replay: {reference.shifts:,} shifts, "
          f"{reference.runtime_ns:,.0f} ns")
    for chunk in (1_000, 10_000, len(mono)):
        trace = stream_address_trace(raw, chunk=chunk, word_bytes=8)
        report = simulate(trace, placement, config)
        marker = "==" if report == reference else "!="
        print(f"  streamed chunk={chunk:>7,}: {report.shifts:,} shifts "
              f"{marker} monolithic (peak ~{9 * chunk / 2**20:.1f} MiB "
              f"resident)")
        assert report == reference

    # (4) The same thing as a workload spec.
    program = resolve_workload(
        f"file:{raw},word=8,stream=1,chunk=10000", WorkloadContext()
    )
    (trace,) = program.traces
    print(f"workload spec resolves to {trace!r}")
    print(f"store-key name (residency-free): {program.name}")


if __name__ == "__main__":
    main()
