"""Static placement vs runtime mitigation: swapping and pre-shifting.

The related work attacks RTM shift overhead in hardware — swap hot data
toward the port at runtime (Sun et al., DAC'13) or pre-align the likely
next domain during idle cycles (Atoofian; Mao et al.). The paper's
counter-argument is that *compile-time placement gets the shifts out for
free*. This example stages the face-off on one generated program:

* AFD-OFU                — frequency-only static baseline
* AFD-OFU + swapping     — the baseline helped by runtime migration
* DMA-SR                 — the paper's static placement
* DMA-SR + pre-shifting  — placement plus idle-time alignment

Run:  python examples/online_vs_static.py
"""

from repro import get_policy, iso_capacity_sweep, simulate
from repro.rtm.preshift import PreshiftController, PreshiftPolicy
from repro.rtm.swapping import SwappingController
from repro.trace.generators.offsetstone import load_benchmark
from repro.util.tables import format_table


def main() -> None:
    program = load_benchmark("codecs", scale=0.4, seed=7)
    config = [c for c in iso_capacity_sweep() if c.dbcs == 4][0]
    cap = config.locations_per_dbc
    print(f"workload: {program.name}, {program.num_sequences} sequences, "
          f"{program.total_accesses} accesses on {config.describe()}")

    shifts = {k: 0 for k in
              ("AFD-OFU", "AFD-OFU+swap", "DMA-SR", "DMA-SR demand (preshift)")}
    latency = dict.fromkeys(shifts, 0.0)
    swap_count = 0
    for trace in program.traces:
        seq = trace.sequence
        afd = get_policy("AFD-OFU").place(seq, config.dbcs, cap)
        dma = get_policy("DMA-SR").place(seq, config.dbcs, cap)

        r = simulate(trace, afd, config)
        shifts["AFD-OFU"] += r.shifts
        latency["AFD-OFU"] += r.runtime_ns

        dyn, stats = SwappingController(config, afd, threshold=4).execute(trace)
        shifts["AFD-OFU+swap"] += dyn.shifts
        latency["AFD-OFU+swap"] += dyn.runtime_ns
        swap_count += stats.swaps

        r = simulate(trace, dma, config)
        shifts["DMA-SR"] += r.shifts
        latency["DMA-SR"] += r.runtime_ns

        ps = PreshiftController(config, dma, policy=PreshiftPolicy.CENTRE)
        rep = ps.execute(trace)
        shifts["DMA-SR demand (preshift)"] += rep.demand_shifts
        latency["DMA-SR demand (preshift)"] += rep.latency_ns

    rows = [
        [name, shifts[name], round(latency[name] / 1e3, 2)]
        for name in shifts
    ]
    print(format_table(
        ["scheme", "latency-bearing shifts", "runtime [us]"],
        rows, title="static placement vs runtime mitigation",
    ))
    print(f"\n(swapping performed {swap_count} migrations — each costing "
          "two extra reads+writes and alignment shifts)")
    print(
        "\nTakeaway: the runtime schemes fight symptoms. Swapping recovers"
        "\nsome of a frequency-only layout's cost but pays for every"
        "\nmigration; naive pre-shifting actually *adds* demand shifts on a"
        "\nplacement-optimized layout, because DMA-SR already leaves the"
        "\nport exactly where the next access wants it. Sequence-aware"
        "\nstatic placement wins with zero hardware support — the paper's"
        "\nSec. V argument."
    )


if __name__ == "__main__":
    main()
