"""Write your own placement policy and race it against the built-ins.

The library's policies all share one shape: ``(sequence, num_dbcs,
capacity, rng) -> Placement``. This example implements two custom
strategies —

* ``lifetime-balance``: sorts variables by lifespan and deals long-lived
  variables breadth-first (spreading the expensive ones) while packing
  short-lived variables densely, and
* ``hot-centre``: AFD's partition but with each DBC's hottest variable
  in the middle of the layout (a pyramid order),

— wraps them in :class:`repro.core.policies.Policy`, and compares them
with the paper's policies on a generated control-code program.

Run:  python examples/custom_policy.py
"""

from collections import deque

from repro import Liveness, Placement, get_policy, shift_cost
from repro.core.inter.afd import afd_partition
from repro.core.policies import Policy
from repro.trace.generators.offsetstone import load_benchmark
from repro.util.tables import format_table


def lifetime_balance(sequence, num_dbcs, capacity, _rng) -> Placement:
    """Spread long-lived variables, pack short-lived ones densely."""
    live = Liveness(sequence)
    ranked = sorted(
        sequence.variables,
        key=lambda v: (-live.lifespan(v), sequence.index_of(v)),
    )
    dbcs: list[list[str]] = [[] for _ in range(num_dbcs)]
    cursor = 0
    for v in ranked:
        for _ in range(num_dbcs):
            dbc = dbcs[cursor % num_dbcs]
            cursor += 1
            if len(dbc) < capacity:
                dbc.append(v)
                break
    # within each DBC, order by first occurrence (OFU-style)
    for dbc in dbcs:
        dbc.sort(key=lambda v: (live.first(v) == 0, live.first(v)))
    return Placement(dbcs)


def hot_centre(sequence, num_dbcs, capacity, _rng) -> Placement:
    """AFD partition, but each DBC lays its hot variables in the middle."""
    dbcs = afd_partition(sequence, num_dbcs, capacity)
    freq = {v: sequence.frequency(v) for v in sequence.variables}
    pyramids: list[list[str]] = []
    for dbc in dbcs:
        ranked = sorted(dbc, key=lambda v: -freq[v])
        layout: deque[str] = deque()
        for i, v in enumerate(ranked):
            if i % 2 == 0:
                layout.append(v)
            else:
                layout.appendleft(v)
        pyramids.append(list(layout))
    return Placement(pyramids)


CUSTOM = [
    Policy(name="lifetime-balance", fn=lifetime_balance),
    Policy(name="hot-centre", fn=hot_centre),
]


def main() -> None:
    program = load_benchmark("cc65", scale=0.4, seed=7)
    num_dbcs, capacity = 4, 256

    contenders = [get_policy(n) for n in ("AFD-OFU", "DMA-OFU", "DMA-SR")]
    contenders += CUSTOM

    rows = []
    for policy in contenders:
        total = 0
        for trace in program.traces:
            seq = trace.sequence
            placement = policy.place(seq, num_dbcs, capacity, rng=0)
            placement.validate_for(seq, num_dbcs=num_dbcs, capacity=capacity)
            total += shift_cost(seq, placement)
        rows.append([policy.name, total])
    rows.sort(key=lambda r: r[1])
    print(format_table(
        ["policy", "total shifts"],
        rows,
        title=f"{program.name}: custom vs built-in policies "
              f"({num_dbcs} DBCs x {capacity})",
    ))
    print(
        "\nTakeaway: frequency- or lifetime-only signals (hot-centre,"
        "\nlifetime-balance) recover part of the gap, but the sequence-aware"
        "\ndisjoint separation (DMA-*) needs both timing and order — the"
        "\npaper's core argument (Sec. III-B)."
    )


if __name__ == "__main__":
    main()
