"""Design-space exploration: how many DBCs should the RTM have?

Reproduces the Fig. 6 methodology as a user-facing flow: for one
application (a generated 'jpeg'-like program) sweep the iso-capacity
configurations of Table I (2/4/8/16 DBCs) and, per configuration, report
shifts, runtime, energy and area for the best placement policy. The
sweep exposes the paper's trade-off: few DBCs drown in shift energy,
many DBCs in leakage and area — the sweet spot sits in the middle.

Run:  python examples/design_space_exploration.py
"""

from repro import get_policy, iso_capacity_sweep
from repro.rtm.sim import simulate_program
from repro.rtm.timing import params_for
from repro.trace.generators.offsetstone import load_benchmark
from repro.util.tables import format_table


def main() -> None:
    program = load_benchmark("jpeg", scale=0.4, seed=7)
    print(
        f"application: {program.name} ({program.num_sequences} sequences, "
        f"{program.total_accesses} accesses, <= {program.max_variables} vars)"
    )

    policy = get_policy("DMA-SR")
    rows = []
    best = None
    for config in iso_capacity_sweep():
        capacity = config.locations_per_dbc
        pairs = [
            (trace, policy.place(trace.sequence, config.dbcs, capacity))
            for trace in program.traces
        ]
        report = simulate_program(pairs, config, params=params_for(config))
        rows.append([
            config.dbcs,
            report.shifts,
            round(report.runtime_ns / 1e3, 2),       # us
            round(report.total_energy_pj / 1e3, 2),  # nJ
            round(report.area_mm2, 4),
        ])
        if best is None or report.total_energy_pj < best[1]:
            best = (config.dbcs, report.total_energy_pj)
    print(format_table(
        ["DBCs", "shifts", "runtime [us]", "energy [nJ]", "area [mm2]"],
        rows,
        title="DMA-SR across the iso-capacity sweep (4 KiB, 32 tracks/DBC)",
    ))
    assert best is not None
    print(f"\nmost energy-efficient configuration: {best[0]} DBCs")

    print("\nper-configuration energy split (why the extremes lose):")
    for config in iso_capacity_sweep():
        capacity = config.locations_per_dbc
        pairs = [
            (trace, policy.place(trace.sequence, config.dbcs, capacity))
            for trace in program.traces
        ]
        report = simulate_program(pairs, config, params=params_for(config))
        total = report.total_energy_pj
        parts = report.energy_breakdown()
        split = "  ".join(
            f"{k}={100 * v / total:5.1f}%" for k, v in parts.items()
        )
        print(f"  {config.dbcs:2d} DBCs: {split}")


if __name__ == "__main__":
    main()
