"""Whole-program placement: one layout for a multi-procedure program.

The paper (following the offset-assignment methodology) gives every
access sequence a private layout of the full memory. A compiler emitting
code for an RTM scratchpad must pick *one* layout that serves all
procedures, with globals pinned at single locations. This example walks
that flow:

1. generate a small program (CFG-shaped procedures sharing globals),
2. fuse the procedures and place the union with several policies,
3. compare against the unrealizable per-procedure reference,
4. show that DMA absorbs most of the single-layout penalty because fused
   procedure locals remain disjoint phases.

Run:  python examples/program_layout.py
"""

from repro.core.program import (
    best_program_placement,
    per_sequence_reference,
    place_program,
)
from repro.trace.generators.programs import ProcedureSpec, program_sequences
from repro.trace.sequence import AccessSequence
from repro.util.tables import format_table


def with_shared_globals(seqs: list[AccessSequence]) -> list[AccessSequence]:
    """Rename each procedure's globals onto one shared set (simulating
    file-scope variables used by every procedure)."""
    renamed = []
    for seq in seqs:
        mapping = {}
        shared_idx = 0
        for v in seq.variables:
            if "_g" in v:
                mapping[v] = f"G{shared_idx}"
                shared_idx += 1
            else:
                mapping[v] = v
        renamed.append(
            AccessSequence(
                [mapping[a] for a in seq.accesses],
                [mapping[v] for v in seq.variables],
                name=seq.name,
            )
        )
    return renamed


def main() -> None:
    spec = ProcedureSpec(target_statements=70, procedure_vars=3)
    procedures = with_shared_globals(program_sequences(5, spec=spec, rng=99))
    union = {v for s in procedures for v in s.variables}
    print(f"program: {len(procedures)} procedures, {len(union)} distinct "
          f"variables, {sum(len(s) for s in procedures)} accesses")

    num_dbcs, capacity = 8, 128
    rows = []
    for policy in ("AFD-OFU", "DMA-OFU", "DMA-SR"):
        result = place_program(procedures, num_dbcs, capacity, policy=policy)
        rows.append([f"shared {policy}", result.total_cost])
    private = per_sequence_reference(procedures, num_dbcs, capacity,
                                     policy="DMA-SR")
    rows.append(["private DMA-SR (reference)", private])
    print(format_table(
        ["layout", "total shifts"], rows,
        title=f"one layout for all procedures ({num_dbcs} DBCs x {capacity})",
    ))

    name, best = best_program_placement(procedures, num_dbcs, capacity)
    print(f"\nauto-selected policy: {name} ({best.total_cost} shifts)")
    print("per-procedure breakdown:")
    for proc, cost in best.per_sequence_costs.items():
        print(f"  {proc}: {cost}")
    print(
        "\nTakeaway: fusing procedures turns their locals into disjoint"
        "\nphases, so the sequence-aware policies keep most of their edge"
        "\neven under the single-layout constraint a real compiler faces."
    )


if __name__ == "__main__":
    main()
