"""Analyze a memory trace: the signals placement heuristics feed on.

Loads one generated suite program, then for its dominating sequence
prints (1) basic shape, (2) the hottest variables, (3) the access-graph
structure, (4) the disjoint-lifespan chains Algorithm 1 and the
multi-set extension would harvest, and (5) writes the trace to the
portable text format so it can be re-run through the CLI tools:

    repro-place /tmp/mpeg2.trace --dbcs 4 --domains 256 --policy DMA-SR

Run:  python examples/trace_analysis_report.py
"""

import tempfile
from pathlib import Path

from repro import AccessGraph, Liveness, write_traces
from repro.core.inter.dma import dma_split
from repro.core.inter.multiset import extract_disjoint_sets
from repro.trace.generators.offsetstone import load_benchmark
from repro.util.tables import format_table


def main() -> None:
    program = load_benchmark("mpeg2", scale=0.3, seed=7)
    trace = max(program.traces, key=len)
    seq = trace.sequence

    print(f"program {program.name} ({program.domain}), "
          f"{program.num_sequences} sequences; analyzing {seq.name!r}")
    print(f"  {len(seq)} accesses over {seq.num_variables} variables "
          f"({trace.num_writes} writes)")

    # hottest variables
    live = Liveness(seq)
    hottest = sorted(
        seq.variables, key=lambda v: -live.frequency(v)
    )[:8]
    rows = [
        [v, live.frequency(v), live.first(v), live.last(v), live.lifespan(v)]
        for v in hottest
    ]
    print()
    print(format_table(
        ["variable", "A_v", "F_v", "L_v", "lifespan"],
        rows, title="hottest variables",
    ))

    # access-graph structure
    graph = AccessGraph(seq)
    degrees = sorted(
        (graph.weighted_degree(v) for v in seq.variables), reverse=True
    )
    print(
        f"\naccess graph: {graph.num_edges()} edges, total weight "
        f"{graph.total_weight()}, self-transitions {graph.self_transitions} "
        f"(free shifts), top degree {degrees[0]}"
    )

    # disjoint chains
    split = dma_split(seq)
    share = split.disjoint_frequency_sum / len(seq)
    print(
        f"\nAlgorithm 1 disjoint set: {len(split.vdj)} variables capturing "
        f"{100 * share:.1f}% of all accesses"
    )
    chains, leftovers = extract_disjoint_sets(seq)
    print(f"multi-set extension: {len(chains)} chains "
          f"({[len(c) for c in chains]}), {len(leftovers)} leftover variables")

    # portable trace file
    out = Path(tempfile.gettempdir()) / f"{program.name}.trace"
    write_traces(out, [trace])
    print(f"\ntrace written to {out} — try:")
    print(f"  repro-place {out} --dbcs 4 --domains 256 --policy DMA-SR")


if __name__ == "__main__":
    main()
